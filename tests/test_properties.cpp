// Property-style sweeps (parameterized): seed sweeps for every sort,
// exhaustive small shapes, and cross-strategy consistency.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/parallel_sort.hpp"
#include "bitonic/sorts.hpp"
#include "net/sequence.hpp"
#include "psort/column_sort.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"

namespace bsort {
namespace {

using testing::run_blocked_spmd;

// -- Seed sweep: the smart sort across many random inputs ---------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SmartSortsEverySeed) {
  auto keys = util::generate_keys(1u << 11, util::KeyDistribution::kUniform31,
                                  GetParam());
  auto want = keys;
  std::sort(want.begin(), want.end());
  run_blocked_spmd(keys, 8, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::smart_sort(p, s);
                   });
  EXPECT_EQ(keys, want);
}

TEST_P(SeedSweep, FusedMatchesTwoPhaseEverySeed) {
  auto k1 = util::generate_keys(1u << 10, util::KeyDistribution::kUniform31,
                                GetParam() + 1000);
  auto k2 = k1;
  bitonic::SmartOptions fused;
  fused.compute = bitonic::SmartCompute::kFused;
  run_blocked_spmd(k1, 16, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::smart_sort(p, s);
                   });
  run_blocked_spmd(k2, 16, simd::MessageMode::kLong,
                   [&](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::smart_sort(p, s, fused);
                   });
  EXPECT_EQ(k1, k2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<std::uint64_t>(0, 16));

// -- Exhaustive tiny shapes ----------------------------------------------

TEST(TinyShapes, SmartSortAllShapesUpTo256) {
  // Every (lg n, lg P) with lg n in 1..4 and lg P in 1..4.
  for (int log_n = 1; log_n <= 4; ++log_n) {
    for (int log_p = 1; log_p <= 4; ++log_p) {
      const std::size_t total = std::size_t{1} << (log_n + log_p);
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        auto keys = util::generate_keys(total, util::KeyDistribution::kUniform31, seed);
        auto want = keys;
        std::sort(want.begin(), want.end());
        run_blocked_spmd(keys, 1 << log_p, simd::MessageMode::kLong,
                         [](simd::Proc& p, std::span<std::uint32_t> s) {
                           bitonic::smart_sort(p, s);
                         });
        EXPECT_EQ(keys, want)
            << "log_n=" << log_n << " log_p=" << log_p << " seed=" << seed;
      }
    }
  }
}

TEST(TinyShapes, TailStrategyAllShapes) {
  bitonic::SmartOptions tail;
  tail.strategy = schedule::ShiftStrategy::kTail;
  for (int log_n = 1; log_n <= 4; ++log_n) {
    for (int log_p = 1; log_p <= 4; ++log_p) {
      const std::size_t total = std::size_t{1} << (log_n + log_p);
      auto keys = util::generate_keys(total, util::KeyDistribution::kUniform31,
                                      total);
      auto want = keys;
      std::sort(want.begin(), want.end());
      run_blocked_spmd(keys, 1 << log_p, simd::MessageMode::kLong,
                       [&](simd::Proc& p, std::span<std::uint32_t> s) {
                         bitonic::smart_sort(p, s, tail);
                       });
      EXPECT_EQ(keys, want) << "log_n=" << log_n << " log_p=" << log_p;
    }
  }
}

// -- Bitonic-split invariant on network-produced data --------------------

TEST(Invariants, SplitPreservesBitonicityRecursively) {
  // Split a large bitonic sequence repeatedly; both halves must stay
  // bitonic, be value-separated, and eventually become sorted.
  std::vector<std::uint32_t> v(1024);
  for (std::size_t i = 0; i < 512; ++i) v[i] = static_cast<std::uint32_t>(i * 7 % 4096);
  std::sort(v.begin(), v.begin() + 512);
  for (std::size_t i = 512; i < 1024; ++i) {
    v[i] = static_cast<std::uint32_t>((1024 - i) * 5 % 4096);
  }
  std::sort(v.begin() + 512, v.end(), std::greater<>());
  ASSERT_TRUE(net::is_bitonic(v));
  for (std::size_t block = v.size(); block >= 2; block /= 2) {
    for (std::size_t base = 0; base < v.size(); base += block) {
      std::span<std::uint32_t> s(v.data() + base, block);
      ASSERT_TRUE(net::is_bitonic(s));
      net::bitonic_split(s);
      const auto lo_max = *std::max_element(s.begin(), s.begin() + block / 2);
      const auto hi_min = *std::min_element(s.begin() + block / 2, s.end());
      EXPECT_LE(lo_max, hi_min);
    }
  }
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

// -- Strided generic min-search ------------------------------------------

TEST(Invariants, GenericMinSearchOnStridedView) {
  const std::size_t count = 257;  // non-power-of-two on purpose
  const std::size_t stride = 3;
  std::vector<std::uint32_t> flat(count * stride, 0);
  // Build a rotated rise-fall sequence in the strided slots.
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t r = (i + 71) % count;
    const std::uint32_t val = static_cast<std::uint32_t>(
        r < count / 2 ? 2 * r : 2 * (count - r) - 1);
    flat[i * stride] = val;
  }
  const auto res = net::bitonic_min_index_log_generic(
      count, [&](std::size_t i) { return flat[i * stride]; });
  std::uint32_t expect = flat[0];
  for (std::size_t i = 0; i < count; ++i) expect = std::min(expect, flat[i * stride]);
  EXPECT_EQ(flat[res.index * stride], expect);
}

// -- Cross-algorithm consistency over distributions -----------------------

class DistributionSweep
    : public ::testing::TestWithParam<util::KeyDistribution> {};

TEST_P(DistributionSweep, AllAlgorithmsAgree) {
  const auto input = util::generate_keys(1u << 13, GetParam(), 4242);
  auto want = input;
  std::sort(want.begin(), want.end());
  for (const auto alg :
       {api::Algorithm::kSmartBitonic, api::Algorithm::kBlockedMergeBitonic,
        api::Algorithm::kCyclicBlockedBitonic, api::Algorithm::kNaiveBitonic,
        api::Algorithm::kParallelRadix, api::Algorithm::kSampleSort,
        api::Algorithm::kColumnSort}) {
    api::Config cfg;
    cfg.nprocs = 8;
    cfg.algorithm = alg;
    ASSERT_TRUE(api::config_valid(cfg, input.size()));
    auto keys = input;
    const auto outcome = api::parallel_sort(keys, cfg);
    EXPECT_TRUE(outcome.sorted) << api::algorithm_name(alg);
    EXPECT_EQ(keys, want) << api::algorithm_name(alg);
  }
}

INSTANTIATE_TEST_SUITE_P(Distros, DistributionSweep,
                         ::testing::Values(util::KeyDistribution::kUniform31,
                                           util::KeyDistribution::kLowEntropy,
                                           util::KeyDistribution::kSorted,
                                           util::KeyDistribution::kReversed,
                                           util::KeyDistribution::kConstant));

}  // namespace
}  // namespace bsort
