// Cross-module integration tests: all sorts agree; reports are sane;
// short vs long message modes produce identical data movement but
// different charged times.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "backend/backend.hpp"
#include "bitonic/sorts.hpp"
#include "loggp/params.hpp"
#include "psort/psort.hpp"
#include "schedule/formulas.hpp"
#include "test_helpers.hpp"
#include "trace/validate.hpp"
#include "util/bits.hpp"
#include "util/random.hpp"

namespace bsort {
namespace {

using testing::run_blocked_spmd;
using testing::run_blocked_spmd_on;
using testing::run_vector_spmd;
using testing::run_vector_spmd_on;

TEST(Integration, AllSortsAgreeOnSameInput) {
  const std::size_t N = 1u << 13;
  const int P = 8;
  const auto input = util::generate_keys(N, util::KeyDistribution::kUniform31, 31337);
  auto expected = input;
  std::sort(expected.begin(), expected.end());

  auto a = input;
  run_blocked_spmd(a, P, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::blocked_merge_sort(p, s);
                   });
  auto b = input;
  run_blocked_spmd(b, P, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::cyclic_blocked_sort(p, s);
                   });
  auto c = input;
  run_blocked_spmd(c, P, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::smart_sort(p, s);
                   });
  const auto d = run_vector_spmd(input, P, simd::MessageMode::kLong,
                                 [](simd::Proc& p, std::vector<std::uint32_t>& keys) {
                                   psort::parallel_radix_sort(p, keys);
                                 });
  const auto e = run_vector_spmd(input, P, simd::MessageMode::kLong,
                                 [](simd::Proc& p, std::vector<std::uint32_t>& keys) {
                                   psort::parallel_sample_sort(p, keys);
                                 });
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);
  EXPECT_EQ(c, expected);
  EXPECT_EQ(d, expected);
  EXPECT_EQ(e, expected);
}

TEST(Integration, ShortMessagesChargeMoreThanLong) {
  const std::size_t N = 1u << 13;
  const int P = 8;
  auto k1 = util::generate_keys(N, util::KeyDistribution::kUniform31, 7);
  auto k2 = k1;
  // The 5x/10x ratios below are properties of the analytic LogP/LogGP
  // charges, so both machines pin the simulated backend (measured
  // native times do not depend on the message-mode accounting).
  simd::Machine m_long(P, loggp::meiko_cs2(), simd::MessageMode::kLong, 1.0,
                       backend::make_simulated());
  simd::Machine m_short(P, loggp::meiko_cs2(), simd::MessageMode::kShort, 1.0,
                        backend::make_simulated());
  const auto rep_long = run_blocked_spmd_on(
      m_long, k1,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); });
  const auto rep_short = run_blocked_spmd_on(
      m_short, k2,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); });
  EXPECT_EQ(k1, k2);
  // Same volume; far more messages and far more transfer time.
  EXPECT_EQ(rep_long.total_comm().elements_sent, rep_short.total_comm().elements_sent);
  EXPECT_GT(rep_short.total_comm().messages_sent,
            10 * rep_long.total_comm().messages_sent);
  EXPECT_GT(rep_short.critical_phases().transfer(),
            5 * rep_long.critical_phases().transfer());
}

TEST(Integration, SmartTransfersLessThanCyclicBlocked) {
  const std::size_t N = 1u << 14;
  const int P = 16;
  auto k1 = util::generate_keys(N, util::KeyDistribution::kUniform31, 8);
  auto k2 = k1;
  const auto rep_smart = run_blocked_spmd(
      k1, P, simd::MessageMode::kLong,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); });
  const auto rep_cb = run_blocked_spmd(
      k2, P, simd::MessageMode::kLong,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::cyclic_blocked_sort(p, s); });
  // Fewer communication steps and lower volume (Theorem 1 + Section 3.2.1).
  EXPECT_LT(rep_smart.total_comm().exchanges, rep_cb.total_comm().exchanges);
  EXPECT_LT(rep_smart.total_comm().elements_sent, rep_cb.total_comm().elements_sent);
}

TEST(Integration, ReportsHavePositivePhases) {
  const std::size_t N = 1u << 12;
  auto keys = util::generate_keys(N, util::KeyDistribution::kUniform31, 9);
  const auto rep = run_blocked_spmd(
      keys, 8, simd::MessageMode::kLong,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); });
  EXPECT_GT(rep.makespan_us, 0.0);
  EXPECT_GT(rep.critical_phases().compute(), 0.0);
  EXPECT_GT(rep.critical_phases().transfer(), 0.0);
  EXPECT_GT(rep.critical_phases().pack(), 0.0);
  EXPECT_GT(rep.critical_phases().unpack(), 0.0);
  for (const auto t : rep.proc_us) EXPECT_GT(t, 0.0);
}

// Every exchange a sort performs must appear in the trace with exactly
// the counters the RunReport accumulated: per VP, the event sums equal
// proc_comm (exchanges / elements / messages) and the charged_us sum
// equals the transfer phase (the only phase charged at commit).  The
// compute/pack/unpack deltas can only cover time up to the last
// exchange, so those sums are bounded by the phase totals.
void expect_trace_matches_report(const simd::Machine& m, const simd::RunReport& rep) {
  for (int r = 0; r < m.nprocs(); ++r) {
    const auto meas = trace::measure(m.vp_trace(r));
    const auto& comm = rep.proc_comm[static_cast<std::size_t>(r)];
    const auto& phases = rep.proc_phases[static_cast<std::size_t>(r)];
    ASSERT_EQ(meas.dropped, 0u) << "ring overflow on vp " << r;
    EXPECT_EQ(meas.exchanges, comm.exchanges) << "vp " << r;
    EXPECT_EQ(meas.elements, comm.elements_sent) << "vp " << r;
    EXPECT_EQ(meas.messages, comm.messages_sent) << "vp " << r;
    EXPECT_NEAR(meas.charged_us, phases.transfer(), 1e-9 * (1.0 + phases.transfer()))
        << "vp " << r;
    double compute = 0, pack = 0, unpack = 0;
    const auto& t = m.vp_trace(r);
    for (std::size_t i = 0; i < t.size(); ++i) {
      compute += t[i].compute_us;
      pack += t[i].pack_us;
      unpack += t[i].unpack_us;
    }
    const double slack = 1e-9;
    EXPECT_LE(compute, phases.compute() + slack) << "vp " << r;
    EXPECT_LE(pack, phases.pack() + slack) << "vp " << r;
    EXPECT_LE(unpack, phases.unpack() + slack) << "vp " << r;
  }
}

TEST(Integration, TraceSumsMatchReportForEverySort) {
  const std::size_t N = 1u << 12;
  const int P = 8;
  const auto input = util::generate_keys(N, util::KeyDistribution::kUniform31, 77);

  const std::function<void(simd::Proc&, std::span<std::uint32_t>)> blocked_sorts[] = {
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::naive_blocked_sort(p, s); },
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::blocked_merge_sort(p, s); },
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::cyclic_blocked_sort(p, s); },
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); },
  };
  for (const auto mode : {simd::MessageMode::kShort, simd::MessageMode::kLong}) {
    for (const auto& sort : blocked_sorts) {
      simd::Machine m(P, loggp::meiko_cs2(), mode);
      m.enable_tracing();
      auto keys = input;
      const auto rep = run_blocked_spmd_on(m, keys, sort);
      expect_trace_matches_report(m, rep);
    }
    const std::function<void(simd::Proc&, std::vector<std::uint32_t>&)> vector_sorts[] = {
        [](simd::Proc& p, std::vector<std::uint32_t>& k) { psort::parallel_radix_sort(p, k); },
        [](simd::Proc& p, std::vector<std::uint32_t>& k) { psort::parallel_sample_sort(p, k); },
    };
    for (const auto& sort : vector_sorts) {
      simd::Machine m(P, loggp::meiko_cs2(), mode);
      m.enable_tracing();
      simd::RunReport rep;
      run_vector_spmd_on(m, input, rep, sort);
      expect_trace_matches_report(m, rep);
    }
  }
}

TEST(Integration, SmartTraceRemapCountMatchesSchedule) {
  const int P = 16;
  const std::size_t n = 1u << 10;
  simd::Machine m(P, loggp::meiko_cs2(), simd::MessageMode::kLong);
  m.enable_tracing();
  auto keys = util::generate_keys(n * P, util::KeyDistribution::kUniform31, 78);
  run_blocked_spmd_on(m, keys, [](simd::Proc& p, std::span<std::uint32_t> s) {
    bitonic::smart_sort(p, s);
  });
  const auto expected =
      schedule::smart_remap_count(util::ilog2(n), util::ilog2(static_cast<std::uint64_t>(P)));
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(trace::measure(m.vp_trace(r)).remaps, expected) << "vp " << r;
    // Every annotated exchange carries its layout transition.
    const auto& t = m.vp_trace(r);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].remap < 0) continue;
      EXPECT_NE(t[i].layout_from, trace::LayoutTag::kUnknown);
      EXPECT_NE(t[i].layout_to, trace::LayoutTag::kUnknown);
      EXPECT_GE(t[i].group_log2, 1);
    }
  }
}

TEST(Integration, RepeatedRunsAreDataDeterministic) {
  const std::size_t N = 1u << 12;
  const auto input = util::generate_keys(N, util::KeyDistribution::kUniform31, 10);
  auto k1 = input;
  auto k2 = input;
  auto r1 = run_blocked_spmd(k1, 8, simd::MessageMode::kLong,
                             [](simd::Proc& p, std::span<std::uint32_t> s) {
                               bitonic::smart_sort(p, s);
                             });
  auto r2 = run_blocked_spmd(k2, 8, simd::MessageMode::kLong,
                             [](simd::Proc& p, std::span<std::uint32_t> s) {
                               bitonic::smart_sort(p, s);
                             });
  EXPECT_EQ(k1, k2);
  // Communication counters are exactly reproducible (timing is not).
  EXPECT_EQ(r1.total_comm().elements_sent, r2.total_comm().elements_sent);
  EXPECT_EQ(r1.total_comm().messages_sent, r2.total_comm().messages_sent);
}

}  // namespace
}  // namespace bsort
