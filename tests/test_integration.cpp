// Cross-module integration tests: all sorts agree; reports are sane;
// short vs long message modes produce identical data movement but
// different charged times.
#include <gtest/gtest.h>

#include <algorithm>

#include "bitonic/sorts.hpp"
#include "loggp/params.hpp"
#include "psort/psort.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"

namespace bsort {
namespace {

using testing::run_blocked_spmd;
using testing::run_vector_spmd;

TEST(Integration, AllSortsAgreeOnSameInput) {
  const std::size_t N = 1u << 13;
  const int P = 8;
  const auto input = util::generate_keys(N, util::KeyDistribution::kUniform31, 31337);
  auto expected = input;
  std::sort(expected.begin(), expected.end());

  auto a = input;
  run_blocked_spmd(a, P, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::blocked_merge_sort(p, s);
                   });
  auto b = input;
  run_blocked_spmd(b, P, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::cyclic_blocked_sort(p, s);
                   });
  auto c = input;
  run_blocked_spmd(c, P, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::smart_sort(p, s);
                   });
  const auto d = run_vector_spmd(input, P, simd::MessageMode::kLong,
                                 [](simd::Proc& p, std::vector<std::uint32_t>& keys) {
                                   psort::parallel_radix_sort(p, keys);
                                 });
  const auto e = run_vector_spmd(input, P, simd::MessageMode::kLong,
                                 [](simd::Proc& p, std::vector<std::uint32_t>& keys) {
                                   psort::parallel_sample_sort(p, keys);
                                 });
  EXPECT_EQ(a, expected);
  EXPECT_EQ(b, expected);
  EXPECT_EQ(c, expected);
  EXPECT_EQ(d, expected);
  EXPECT_EQ(e, expected);
}

TEST(Integration, ShortMessagesChargeMoreThanLong) {
  const std::size_t N = 1u << 13;
  const int P = 8;
  auto k1 = util::generate_keys(N, util::KeyDistribution::kUniform31, 7);
  auto k2 = k1;
  const auto rep_long = run_blocked_spmd(
      k1, P, simd::MessageMode::kLong,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); });
  const auto rep_short = run_blocked_spmd(
      k2, P, simd::MessageMode::kShort,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); });
  EXPECT_EQ(k1, k2);
  // Same volume; far more messages and far more transfer time.
  EXPECT_EQ(rep_long.total_comm().elements_sent, rep_short.total_comm().elements_sent);
  EXPECT_GT(rep_short.total_comm().messages_sent,
            10 * rep_long.total_comm().messages_sent);
  EXPECT_GT(rep_short.critical_phases().transfer(),
            5 * rep_long.critical_phases().transfer());
}

TEST(Integration, SmartTransfersLessThanCyclicBlocked) {
  const std::size_t N = 1u << 14;
  const int P = 16;
  auto k1 = util::generate_keys(N, util::KeyDistribution::kUniform31, 8);
  auto k2 = k1;
  const auto rep_smart = run_blocked_spmd(
      k1, P, simd::MessageMode::kLong,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); });
  const auto rep_cb = run_blocked_spmd(
      k2, P, simd::MessageMode::kLong,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::cyclic_blocked_sort(p, s); });
  // Fewer communication steps and lower volume (Theorem 1 + Section 3.2.1).
  EXPECT_LT(rep_smart.total_comm().exchanges, rep_cb.total_comm().exchanges);
  EXPECT_LT(rep_smart.total_comm().elements_sent, rep_cb.total_comm().elements_sent);
}

TEST(Integration, ReportsHavePositivePhases) {
  const std::size_t N = 1u << 12;
  auto keys = util::generate_keys(N, util::KeyDistribution::kUniform31, 9);
  const auto rep = run_blocked_spmd(
      keys, 8, simd::MessageMode::kLong,
      [](simd::Proc& p, std::span<std::uint32_t> s) { bitonic::smart_sort(p, s); });
  EXPECT_GT(rep.makespan_us, 0.0);
  EXPECT_GT(rep.critical_phases().compute(), 0.0);
  EXPECT_GT(rep.critical_phases().transfer(), 0.0);
  EXPECT_GT(rep.critical_phases().pack(), 0.0);
  EXPECT_GT(rep.critical_phases().unpack(), 0.0);
  for (const auto t : rep.proc_us) EXPECT_GT(t, 0.0);
}

TEST(Integration, RepeatedRunsAreDataDeterministic) {
  const std::size_t N = 1u << 12;
  const auto input = util::generate_keys(N, util::KeyDistribution::kUniform31, 10);
  auto k1 = input;
  auto k2 = input;
  auto r1 = run_blocked_spmd(k1, 8, simd::MessageMode::kLong,
                             [](simd::Proc& p, std::span<std::uint32_t> s) {
                               bitonic::smart_sort(p, s);
                             });
  auto r2 = run_blocked_spmd(k2, 8, simd::MessageMode::kLong,
                             [](simd::Proc& p, std::span<std::uint32_t> s) {
                               bitonic::smart_sort(p, s);
                             });
  EXPECT_EQ(k1, k2);
  // Communication counters are exactly reproducible (timing is not).
  EXPECT_EQ(r1.total_comm().elements_sent, r2.total_comm().elements_sent);
  EXPECT_EQ(r1.total_comm().messages_sent, r2.total_comm().messages_sent);
}

}  // namespace
}  // namespace bsort
