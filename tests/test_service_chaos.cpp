// Service-level chaos: FaultPlans injected into the POOL machines while
// real concurrent traffic flows through SortService, proving the
// self-healing contract of DESIGN.md §10 end to end:
//
//   * a transient (retryable) crash is absorbed by the retry layer —
//     the caller's future succeeds and reports the re-runs it cost;
//   * a machine that keeps failing is quarantined and replaced, and the
//     replacement serves cleanly;
//   * under a full crash storm EVERY future still resolves (success or
//     structured error — never a hang, never a wedged dispatcher), and
//     once the storm lifts the pool recovers its pre-chaos throughput.
//
// FaultPlan mutation protocol: the service's batches read the shared
// plan only while dispatching, so tests mutate `plan.rules` exclusively
// at provable idle points (all futures resolved + queue drained, or
// inside a retry-backoff window much wider than the mutation) and then
// publish the write through the service mutex with a stats() call
// before any dispatcher can re-arm the plan.  That keeps the suite
// clean under TSan, which gates it in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "fault/error.hpp"
#include "fault/plan.hpp"
#include "service/sort_service.hpp"
#include "util/random.hpp"

namespace {

namespace api = bsort::api;
namespace fault = bsort::fault;
namespace service = bsort::service;

using Clock = std::chrono::steady_clock;

std::vector<std::uint32_t> chaos_keys(std::size_t n, std::uint64_t seed) {
  return bsort::util::generate_keys(n, bsort::util::KeyDistribution::kUniform31,
                                    seed);
}

service::ServiceConfig chaos_service(fault::FaultPlan& plan) {
  service::ServiceConfig cfg;
  cfg.base.nprocs = 4;
  cfg.base.algorithm = api::Algorithm::kSmartBitonic;
  // Keep local placement OFF so every batch item runs the full exchange
  // schedule — exchange-targeted fault rules must be able to fire.
  cfg.base.small_item_threshold = 0;
  cfg.base.faults = &plan;
  return cfg;
}

TEST(ServiceChaos, TransientCrashRecoversViaRetry) {
  fault::FaultPlan plan;  // declared before the service: outlives every run
  plan.rules = {{fault::FaultKind::kCrash, /*rank=*/1, /*exchange=*/0}};
  auto cfg = chaos_service(plan);
  cfg.pool_size = 1;
  cfg.max_batch = 1;
  cfg.retry.max_retries = 3;
  cfg.retry.base_ms = 250;  // a wide idle window for the mutation below
  cfg.retry.max_ms = 250;
  cfg.retry.jitter = 0;
  cfg.quarantine_after = 10;  // health management must not mask the retry
  service::SortService svc(cfg);

  auto keys = chaos_keys(4096, 1);
  auto want = keys;
  std::sort(want.begin(), want.end());
  auto fut = svc.submit(std::move(keys));

  // Wait for the first run to crash and its retry to be enqueued; the
  // dispatcher then sits in a 250 ms backoff wait, during which the
  // fault "heals": clear the plan and publish the write through the
  // service mutex before the retry can re-arm it.
  while (svc.stats().retries < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  plan.rules.clear();
  static_cast<void>(svc.stats());

  const auto res = fut.get();  // the retry must SUCCEED
  EXPECT_EQ(res.keys, want);
  EXPECT_GE(res.retries, 1);

  const auto s = svc.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GE(s.retries, 1u);
  EXPECT_GE(s.health_checks, 1u) << "a failed batch must health-check";
  EXPECT_EQ(s.quarantined, 0u) << "one transient failure is not quarantine";
}

TEST(ServiceChaos, RepeatOffenderIsQuarantinedAndReplaced) {
  fault::FaultPlan plan;
  plan.rules = {{fault::FaultKind::kCrash, /*rank=*/1, /*exchange=*/0}};
  auto cfg = chaos_service(plan);
  cfg.pool_size = 1;
  cfg.max_batch = 1;
  cfg.retry.max_retries = 1;
  cfg.retry.base_ms = 5;
  cfg.retry.max_ms = 5;
  cfg.retry.jitter = 0;
  cfg.quarantine_after = 2;  // second consecutive failure pulls the machine
  service::SortService svc(cfg);

  // The plan crashes EVERY run, so the request fails, its one retry
  // fails too, and the single pool machine accumulates two consecutive
  // batch failures: quarantine and replacement, even though the machine
  // itself would pass a health check (the fault lives in the plan).
  auto fut = svc.submit(chaos_keys(2048, 2));
  EXPECT_THROW(fut.get(), bsort::Error);

  const auto deadline = Clock::now() + std::chrono::seconds(30);
  while (svc.stats().replaced < 1 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto s = svc.stats();
  EXPECT_GE(s.quarantined, 1u);
  EXPECT_GE(s.replaced, 1u);
  EXPECT_GE(s.health_checks, 2u);
  EXPECT_EQ(s.failed, 1u);

  // Queue is drained and the future resolved: the dispatcher is idle.
  // Lift the fault and prove the REPLACEMENT machine serves cleanly.
  plan.rules.clear();
  static_cast<void>(svc.stats());
  auto keys = chaos_keys(1024, 3);
  auto want = keys;
  std::sort(want.begin(), want.end());
  const auto res = svc.submit(std::move(keys)).get();
  EXPECT_EQ(res.keys, want);
  EXPECT_EQ(res.retries, 0);
  EXPECT_EQ(svc.stats().completed, 1u);
}

TEST(ServiceChaos, RetryExhaustionDeliversTraceIdAndAttempts) {
  fault::FaultPlan plan;  // crashes EVERY run: the retry budget must die
  plan.rules = {{fault::FaultKind::kCrash, /*rank=*/1, /*exchange=*/0}};
  auto cfg = chaos_service(plan);
  cfg.pool_size = 1;
  cfg.max_batch = 1;
  cfg.retry.max_retries = 1;
  cfg.retry.base_ms = 1;
  cfg.retry.max_ms = 1;
  cfg.retry.jitter = 0;
  cfg.quarantine_after = 10;
  service::SortService svc(cfg);

  auto fut = svc.submit(chaos_keys(2048, 17));
  try {
    fut.get();
    FAIL() << "expected RetryExhausted";
  } catch (const service::RetryExhausted& e) {
    EXPECT_NE(e.trace_id(), 0u);
    EXPECT_EQ(e.attempts(), 2);  // the first run + the one retry
    const std::string what = e.what();
    EXPECT_NE(what.find("retry budget"), std::string::npos) << what;
    EXPECT_NE(what.find("0x"), std::string::npos)
        << "what() must embed the hex trace id: " << what;
  }
  EXPECT_GE(svc.stats().retries, 1u);
}

TEST(ServiceChaos, StatsSnapshotsAreConsistentUnderConcurrentLoad) {
  // stats() is hammered from one thread while two others push traffic:
  // every snapshot must be internally consistent (taken under the
  // service lock — no torn reads) and counters must be monotone across
  // snapshots.  TSan (which gates this suite in CI) proves the
  // concurrent flight-recorder/metrics writes race-free.
  service::ServiceConfig cfg;
  cfg.base.nprocs = 4;
  cfg.base.algorithm = api::Algorithm::kSmartBitonic;
  cfg.pool_size = 2;
  cfg.max_batch = 4;
  service::SortService svc(cfg);

  constexpr int kPerThread = 20;
  std::atomic<int> running{2};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&svc, &running, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto n = static_cast<std::size_t>(64 + 32 * (i % 5));
        const auto salt = static_cast<std::uint64_t>(t * 1000 + i);
        static_cast<void>(svc.submit(chaos_keys(n, salt)).get());
      }
      running.fetch_sub(1);
    });
  }

  std::uint64_t prev_submitted = 0, prev_completed = 0, prev_events = 0;
  while (running.load() > 0) {
    const auto s = svc.stats();
    // Monotone counters: a torn or stale snapshot would go backwards.
    EXPECT_GE(s.submitted, prev_submitted);
    EXPECT_GE(s.completed, prev_completed);
    EXPECT_GE(s.flight_recorded + s.flight_dropped, prev_events);
    // Internal consistency of one snapshot.
    EXPECT_GE(s.submitted, s.completed + s.failed);
    EXPECT_GE(s.pool_busy, 0);
    EXPECT_LE(s.pool_busy, s.pool_size);
    EXPECT_LE(s.completed, s.submitted);
    prev_submitted = s.submitted;
    prev_completed = s.completed;
    prev_events = s.flight_recorded + s.flight_dropped;
  }
  for (auto& t : submitters) t.join();

  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, 2u * kPerThread);
  EXPECT_EQ(s.completed, 2u * kPerThread);
  EXPECT_EQ(s.failed, 0u);
}

TEST(ServiceChaos, CrashStormEveryFutureResolvesAndPoolRecovers) {
  fault::FaultPlan plan;  // starts EMPTY: pre-chaos traffic is clean
  auto cfg = chaos_service(plan);
  cfg.pool_size = 2;
  cfg.max_batch = 4;
  cfg.retry.max_retries = 2;
  cfg.retry.base_ms = 1;
  cfg.retry.max_ms = 4;
  cfg.retry.jitter = 0.5;
  cfg.quarantine_after = 2;
  service::SortService svc(cfg);

  // One burst of concurrent mixed traffic; returns wall seconds.  With
  // the plan EMPTY every request must succeed; with the storm armed the
  // only requirement is that every future RESOLVES.
  const auto burst = [&svc](int n, std::uint64_t salt,
                            bool expect_success) -> double {
    struct Pending {
      std::vector<std::uint32_t> want;
      std::future<service::SortResult> fut;
    };
    std::vector<Pending> pending;
    pending.reserve(static_cast<std::size_t>(n));
    const auto t0 = Clock::now();
    for (int i = 0; i < n; ++i) {
      auto keys = chaos_keys(512, salt * 1000 + static_cast<std::uint64_t>(i));
      Pending p;
      p.want = keys;
      std::sort(p.want.begin(), p.want.end());
      service::SubmitOptions opt;
      opt.priority = (i % 2 != 0) ? service::Priority::kLow
                                  : service::Priority::kHigh;
      if (i % 3 == 0) opt.deadline_s = 30.0;
      p.fut = svc.submit(std::move(keys), opt);
      pending.push_back(std::move(p));
    }
    for (auto& p : pending) {
      try {
        EXPECT_EQ(p.fut.get().keys, p.want);  // resolves or throws — no hang
      } catch (const bsort::Error&) {
        EXPECT_FALSE(expect_success) << "clean traffic must not fail";
      }
    }
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  // Pre-chaos throughput: best (minimum) wall over three 24-request
  // bursts — the min is robust against scheduler noise on shared CI.
  double pre_s = 1e18;
  for (std::uint64_t r = 0; r < 3; ++r) {
    pre_s = std::min(pre_s, burst(24, 10 + r, /*expect_success=*/true));
  }

  // Every pre-chaos future resolved and nothing is queued, so both
  // dispatchers are idle: arm the storm and publish.  Replacement
  // machines inherit the SAME shared plan, so the whole pool keeps
  // crashing (and keeps being quarantined) until the storm lifts.
  ASSERT_EQ(svc.stats().queue_depth, 0u);
  plan.rules = {{fault::FaultKind::kCrash, /*rank=*/1, /*exchange=*/0}};
  static_cast<void>(svc.stats());

  burst(24, 50, /*expect_success=*/false);  // the storm: all futures resolve

  auto s = svc.stats();
  EXPECT_GE(s.retries, 1u) << "storm failures are retryable and retried";
  EXPECT_GE(s.quarantined, 1u);
  EXPECT_GE(s.replaced, 1u);
  EXPECT_GE(s.failed, 1u);

  // Storm futures all resolved and the queue is drained again: lift the
  // fault, publish, and require the pool to RECOVER — best-of-N post
  // wall within 10% of the pre-chaos best (stop early once achieved).
  ASSERT_EQ(svc.stats().queue_depth, 0u);
  plan.rules.clear();
  static_cast<void>(svc.stats());

  double post_s = 1e18;
  for (std::uint64_t r = 0; r < 6 && post_s > pre_s / 0.9; ++r) {
    post_s = std::min(post_s, burst(24, 100 + r, /*expect_success=*/true));
  }
  EXPECT_LE(post_s, pre_s / 0.9)
      << "post-chaos throughput must be within 10% of pre-chaos "
      << "(pre=" << pre_s << "s post=" << post_s << "s)";

  const auto end = svc.stats();
  EXPECT_EQ(end.failed + end.rejected_deadline + end.shed, 24u)
      << "exactly the storm burst fails; clean bursts are untouched";
}

}  // namespace
