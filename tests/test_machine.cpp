#include "simd/machine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "backend/backend.hpp"
#include "loggp/cost.hpp"
#include "loggp/params.hpp"

namespace bsort::simd {
namespace {

/// Tests asserting exact analytic charges pin the simulated backend:
/// under BSORT_BACKEND=native (the native CI leg) the transfer charge
/// is measured host time and the closed forms do not apply.
Machine sim_machine(int nprocs, loggp::Params params, MessageMode mode) {
  return Machine(nprocs, params, mode, 1.0, backend::make_simulated());
}

TEST(Machine, RunsAllProcs) {
  Machine m(8, loggp::meiko_cs2(), MessageMode::kLong);
  std::atomic<int> count{0};
  std::vector<int> ranks(8, -1);
  m.run([&](Proc& p) {
    ranks[static_cast<std::size_t>(p.rank())] = p.rank();
    ++count;
  });
  EXPECT_EQ(count.load(), 8);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(ranks[static_cast<std::size_t>(r)], r);
}

TEST(Machine, BarrierSyncsClocks) {
  Machine m(4, loggp::meiko_cs2(), MessageMode::kLong);
  auto rep = m.run([&](Proc& p) {
    p.charge(Phase::kCompute, static_cast<double>(p.rank()) * 100.0);
    p.barrier();
    // After the barrier every clock equals the max charged (300us).
    EXPECT_DOUBLE_EQ(p.clock_us(), 300.0);
  });
  EXPECT_DOUBLE_EQ(rep.makespan_us, 300.0);
}

TEST(Machine, ExchangeDeliversPayloads) {
  const int P = 4;
  Machine m(P, loggp::meiko_cs2(), MessageMode::kLong);
  m.run([&](Proc& p) {
    // Everyone sends its rank repeated (rank+1) times to every peer.
    std::vector<std::uint64_t> peers(P);
    std::iota(peers.begin(), peers.end(), 0);
    std::vector<std::vector<std::uint32_t>> payloads(P);
    for (int d = 0; d < P; ++d) {
      payloads[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(p.rank()) + 1, static_cast<std::uint32_t>(p.rank()));
    }
    auto rec = p.exchange(peers, std::move(payloads), peers);
    for (int s = 0; s < P; ++s) {
      if (s == p.rank()) continue;  // self slot is empty by contract
      ASSERT_EQ(rec[static_cast<std::size_t>(s)].size(), static_cast<std::size_t>(s) + 1);
      for (const auto v : rec[static_cast<std::size_t>(s)]) {
        EXPECT_EQ(v, static_cast<std::uint32_t>(s));
      }
    }
  });
}

TEST(Machine, ExchangeWithPartner) {
  Machine m(2, loggp::meiko_cs2(), MessageMode::kLong);
  m.run([&](Proc& p) {
    std::vector<std::uint32_t> payload{static_cast<std::uint32_t>(p.rank() + 10)};
    auto got = p.exchange_with(static_cast<std::uint64_t>(1 - p.rank()), std::move(payload));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], static_cast<std::uint32_t>((1 - p.rank()) + 10));
  });
}

TEST(Machine, LongModeChargesLogGPFormula) {
  const auto params = loggp::meiko_cs2();
  Machine m = sim_machine(2, params, MessageMode::kLong);
  auto rep = m.run([&](Proc& p) {
    std::vector<std::uint32_t> payload(100, 1);
    p.exchange_with(static_cast<std::uint64_t>(1 - p.rank()), std::move(payload));
  });
  const double expected = loggp::remap_time_long(params, 100, 1, 4);
  for (const auto& ph : rep.proc_phases) {
    EXPECT_NEAR(ph.transfer(), expected, 1e-9);
  }
  const auto comm = rep.total_comm();
  EXPECT_EQ(comm.exchanges, 1u);
  EXPECT_EQ(comm.elements_sent, 200u);
  EXPECT_EQ(comm.messages_sent, 2u);
}

TEST(Machine, ShortModeChargesPerElement) {
  const auto params = loggp::meiko_cs2();
  Machine m = sim_machine(2, params, MessageMode::kShort);
  auto rep = m.run([&](Proc& p) {
    std::vector<std::uint32_t> payload(50, 1);
    p.exchange_with(static_cast<std::uint64_t>(1 - p.rank()), std::move(payload));
  });
  const double expected = loggp::remap_time_short(params, 50);
  for (const auto& ph : rep.proc_phases) {
    EXPECT_NEAR(ph.transfer(), expected, 1e-9);
  }
  EXPECT_EQ(rep.total_comm().messages_sent, 100u);  // one message per key
}

TEST(Machine, TimedChargesCpuTime) {
  Machine m(2, loggp::meiko_cs2(), MessageMode::kLong);
  auto rep = m.run([&](Proc& p) {
    volatile double sink = 0;
    p.timed(Phase::kCompute, [&] {
      double acc = 0;
      for (int i = 0; i < 2000000; ++i) acc += static_cast<double>(i);
      sink = acc;
    });
  });
  for (const auto& ph : rep.proc_phases) {
    EXPECT_GT(ph.compute(), 0.0);
    EXPECT_DOUBLE_EQ(ph.pack(), 0.0);
  }
}

TEST(Machine, SingleProcNoDeadlock) {
  Machine m(1, loggp::meiko_cs2(), MessageMode::kLong);
  auto rep = m.run([&](Proc& p) {
    p.barrier();
    p.barrier();
    p.charge(Phase::kCompute, 5.0);
  });
  EXPECT_DOUBLE_EQ(rep.makespan_us, 5.0);
}

TEST(Machine, ReportCriticalPhases) {
  Machine m(3, loggp::meiko_cs2(), MessageMode::kLong);
  auto rep = m.run([&](Proc& p) {
    p.charge(Phase::kCompute, p.rank() == 2 ? 99.0 : 1.0);
  });
  EXPECT_DOUBLE_EQ(rep.makespan_us, 99.0);
  EXPECT_DOUBLE_EQ(rep.critical_phases().compute(), 99.0);
}

TEST(Machine, ExceptionPropagates) {
  Machine m(1, loggp::meiko_cs2(), MessageMode::kLong);
  EXPECT_THROW(m.run([&](Proc&) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(Machine, ThrowingVpPoisonsBarrier) {
  // Regression: a VP that throws before reaching a barrier used to leave
  // its peers blocked in pthread_cond_wait forever.  The poisoned
  // barrier must unwind every waiter and run() must rethrow.
  const int P = 8;
  Machine m(P, loggp::meiko_cs2(), MessageMode::kLong);
  EXPECT_THROW(m.run([&](Proc& p) {
                 if (p.rank() == 3) throw std::runtime_error("vp 3 died");
                 p.barrier();
                 p.barrier();  // never completes; poison unwinds us here
               }),
               std::runtime_error);
}

TEST(Machine, ThrowingVpUnwindsPeersInsideExchange) {
  // Same, with the survivors parked inside the exchange protocol rather
  // than a plain barrier.
  const int P = 4;
  Machine m(P, loggp::meiko_cs2(), MessageMode::kLong);
  EXPECT_THROW(m.run([&](Proc& p) {
                 if (p.rank() == 0) throw std::runtime_error("early exit");
                 const auto partner = static_cast<std::uint64_t>(p.rank() ^ 1);
                 p.exchange_with(partner, {1u, 2u, 3u});
               }),
               std::runtime_error);
}

TEST(Machine, MachineUsableAfterThrow) {
  const int P = 4;
  Machine m(P, loggp::meiko_cs2(), MessageMode::kLong);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(m.run([&](Proc& p) {
                   if (p.rank() == round) throw std::runtime_error("boom");
                   p.barrier();
                 }),
                 std::runtime_error);
    // The poisoned barrier must be fully reset: a healthy run on the
    // same Machine still exchanges and reports correctly.
    auto rep = m.run([&](Proc& p) {
      auto got = p.exchange_with(static_cast<std::uint64_t>(p.rank() ^ 1),
                                 {static_cast<std::uint32_t>(p.rank())});
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], static_cast<std::uint32_t>(p.rank() ^ 1));
    });
    EXPECT_EQ(rep.proc_us.size(), static_cast<std::size_t>(P));
  }
}

}  // namespace
}  // namespace bsort::simd
