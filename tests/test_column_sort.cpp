#include "psort/column_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bitonic/sorts.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"

namespace bsort::psort {
namespace {

using testing::run_blocked_spmd;
using util::KeyDistribution;

TEST(ColumnSort, ShapeCondition) {
  EXPECT_TRUE(column_sort_shape_ok(1, 1));
  EXPECT_TRUE(column_sort_shape_ok(2, 2));      // r >= 2*(1)^2
  EXPECT_TRUE(column_sort_shape_ok(32, 4));     // 32 >= 2*9
  EXPECT_FALSE(column_sort_shape_ok(16, 4));    // 16 < 18
  EXPECT_TRUE(column_sort_shape_ok(128, 8));    // 128 >= 98
  EXPECT_FALSE(column_sort_shape_ok(64, 8));    // 64 < 98
  EXPECT_TRUE(column_sort_shape_ok(512, 16));   // 512 >= 450
  EXPECT_FALSE(column_sort_shape_ok(256, 16));  // 256 < 450
}

struct Case {
  std::size_t total_keys;
  int nprocs;
  KeyDistribution dist;
};

class ColumnSortTest : public ::testing::TestWithParam<Case> {};

TEST_P(ColumnSortTest, Sorts) {
  const auto& c = GetParam();
  ASSERT_TRUE(column_sort_shape_ok(c.total_keys / static_cast<std::size_t>(c.nprocs),
                                   static_cast<std::uint64_t>(c.nprocs)));
  auto keys = util::generate_keys(c.total_keys, c.dist, c.total_keys + 5);
  auto want = keys;
  std::sort(want.begin(), want.end());
  run_blocked_spmd(keys, c.nprocs, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) { column_sort(p, s); });
  EXPECT_EQ(keys, want);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ColumnSortTest,
    ::testing::Values(Case{1u << 7, 2, KeyDistribution::kUniform31},
                      Case{1u << 8, 4, KeyDistribution::kUniform31},
                      Case{1u << 10, 8, KeyDistribution::kUniform31},
                      Case{1u << 13, 16, KeyDistribution::kUniform31},
                      Case{1u << 10, 8, KeyDistribution::kLowEntropy},
                      Case{1u << 10, 8, KeyDistribution::kSorted},
                      Case{1u << 10, 8, KeyDistribution::kReversed},
                      Case{1u << 10, 8, KeyDistribution::kConstant},
                      Case{1u << 8, 1, KeyDistribution::kUniform31}));

TEST(ColumnSort, AgreesWithSmartBitonic) {
  const auto input = util::generate_keys(1u << 12, KeyDistribution::kUniform31, 99);
  auto a = input;
  auto b = input;
  run_blocked_spmd(a, 8, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) { column_sort(p, s); });
  run_blocked_spmd(b, 8, simd::MessageMode::kLong,
                   [](simd::Proc& p, std::span<std::uint32_t> s) {
                     bitonic::smart_sort(p, s);
                   });
  EXPECT_EQ(a, b);
}

TEST(ColumnSort, CommunicationStepCount) {
  // Column sort has exactly four communication phases (two of them
  // all-to-all); our implementation issues 4 exchanges per processor.
  auto keys = util::generate_keys(1u << 10, KeyDistribution::kUniform31, 1);
  const auto rep = run_blocked_spmd(
      keys, 8, simd::MessageMode::kLong,
      [](simd::Proc& p, std::span<std::uint32_t> s) { column_sort(p, s); });
  for (const auto& c : rep.proc_comm) {
    EXPECT_EQ(c.exchanges, 4u);
  }
}

}  // namespace
}  // namespace bsort::psort
