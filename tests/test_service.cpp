// SortService end to end: batching correctness over a pre-warmed pool,
// arbitrary (non-power-of-two) request sizes via padding, splitter
// sharding of oversized requests, queue-full and deadline admission
// control, structured failure delivery, SLO stats sanity, and the
// request-lifecycle observability layer (trace IDs, flight recorder,
// telemetry export, service Perfetto traces).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "fault/error.hpp"
#include "fault/plan.hpp"
#include "service/sort_service.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace {

namespace api = bsort::api;
namespace fault = bsort::fault;
namespace service = bsort::service;

std::vector<std::uint32_t> request_keys(std::size_t n, std::uint64_t seed) {
  return bsort::util::generate_keys(n, bsort::util::KeyDistribution::kUniform31,
                                    seed);
}

service::ServiceConfig small_service() {
  service::ServiceConfig cfg;
  cfg.base.nprocs = 4;
  cfg.base.algorithm = api::Algorithm::kSmartBitonic;
  cfg.pool_size = 2;
  cfg.max_batch = 8;
  return cfg;
}

TEST(SortService, SortsManyConcurrentRequests) {
  service::SortService svc(small_service());
  struct Pending {
    std::vector<std::uint32_t> want;
    std::future<service::SortResult> fut;
  };
  std::vector<Pending> pending;
  for (std::uint64_t i = 0; i < 48; ++i) {
    // Sizes deliberately include non-powers-of-two and sub-P counts.
    const std::size_t n = 3 + (i * 37) % 900;
    auto keys = request_keys(n, i);
    Pending p;
    p.want = keys;
    std::sort(p.want.begin(), p.want.end());
    p.fut = svc.submit(std::move(keys));
    pending.push_back(std::move(p));
  }
  for (auto& p : pending) {
    const auto res = p.fut.get();
    EXPECT_EQ(res.keys, p.want);
    EXPECT_GE(res.batch_items, 1);
    EXPECT_GE(res.total_us, 0.0);
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 48u);
  EXPECT_EQ(stats.completed, 48u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.batches, 1u);
  // Batching may not beat the dispatcher under light load, but it can
  // never exceed one run per request.
  EXPECT_LE(stats.batches, stats.completed);
}

TEST(SortService, CoalescesQueuedRequestsIntoSharedRuns) {
  auto cfg = small_service();
  cfg.pool_size = 1;  // a single machine serializes dispatch
  cfg.max_batch = 8;
  service::SortService svc(cfg);

  // Occupy the machine with a large request; everything submitted while
  // it runs must coalesce into (at most) one shared follow-up batch.
  auto big = svc.submit(request_keys(std::size_t{1} << 16, 7));
  std::vector<std::future<service::SortResult>> small;
  for (std::uint64_t i = 0; i < 8; ++i) {
    small.push_back(svc.submit(request_keys(64, 100 + i)));
  }
  big.get();
  int max_batch_items = 0;
  for (auto& f : small) {
    max_batch_items = std::max(max_batch_items, f.get().batch_items);
  }
  EXPECT_GE(max_batch_items, 2)
      << "requests queued behind a running sort should share one run";
  EXPECT_GE(svc.stats().batch_occupancy_max, 2.0);
}

TEST(SortService, PadsArbitrarySizesIncludingPadKeyCollisions) {
  service::SortService svc(small_service());
  for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{100},
                              std::size_t{1000}, std::size_t{1} << 12,
                              (std::size_t{1} << 12) + 1}) {
    auto keys = request_keys(n, n);
    auto want = keys;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(svc.submit(std::move(keys)).get().keys, want) << "n=" << n;
  }
  // All keys equal to the pad sentinel: unpadding must still drop
  // exactly the pad count, not every max-valued key.
  std::vector<std::uint32_t> all_max(37, 0xFFFFFFFFu);
  const auto res = svc.submit(all_max).get();
  EXPECT_EQ(res.keys, all_max);

  EXPECT_TRUE(svc.submit({}).get().keys.empty());
}

TEST(SortService, ShardsOversizedRequestsAcrossThePool) {
  auto cfg = small_service();
  cfg.shard_threshold = std::size_t{1} << 14;
  cfg.shards_per_request = 4;
  service::SortService svc(cfg);

  auto keys = request_keys(std::size_t{1} << 15, 9);
  auto want = keys;
  std::sort(want.begin(), want.end());
  const auto res = svc.submit(std::move(keys)).get();
  EXPECT_EQ(res.keys, want);
  EXPECT_GE(res.shards, 2);
  EXPECT_EQ(svc.stats().sharded, 1u);

  // Below the threshold: untouched.
  auto small = request_keys(256, 10);
  auto small_want = small;
  std::sort(small_want.begin(), small_want.end());
  const auto small_res = svc.submit(std::move(small)).get();
  EXPECT_EQ(small_res.keys, small_want);
  EXPECT_EQ(small_res.shards, 1);
}

TEST(SortService, LocalPlacementServesSmallRequestsCorrectly) {
  auto cfg = small_service();
  cfg.base.small_item_threshold = 2048;  // batch scheduler may place locally
  service::SortService svc(cfg);
  std::vector<std::pair<std::vector<std::uint32_t>, std::future<service::SortResult>>>
      pending;
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto keys = request_keys(100 + (i * 53) % 500, i);
    auto want = keys;
    std::sort(want.begin(), want.end());
    auto fut = svc.submit(std::move(keys));
    pending.emplace_back(std::move(want), std::move(fut));
  }
  for (auto& [want, fut] : pending) EXPECT_EQ(fut.get().keys, want);
  EXPECT_EQ(svc.stats().completed, 32u);
  EXPECT_EQ(svc.stats().failed, 0u);
}

TEST(SortService, QueueFullRejectsAtSubmit) {
  auto cfg = small_service();
  cfg.pool_size = 1;
  cfg.max_batch = 1;
  cfg.queue_limit = 2;
  service::SortService svc(cfg);

  // Park the machine on a big sort, then overfill the tiny queue.
  auto big = svc.submit(request_keys(std::size_t{1} << 16, 3));
  std::vector<std::future<service::SortResult>> accepted;
  bool rejected = false;
  for (int i = 0; i < 16 && !rejected; ++i) {
    try {
      accepted.push_back(svc.submit(request_keys(64, 40 + i)));
    } catch (const service::QueueFull& e) {
      rejected = true;
      EXPECT_EQ(e.limit(), 2u);
      EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
    }
  }
  EXPECT_TRUE(rejected) << "16 submits against queue_limit=2 must overflow";
  EXPECT_GE(svc.stats().rejected_queue_full, 1u);

  // Everything admitted still completes: rejection sheds load, it does
  // not poison the pool.
  big.get();
  for (auto& f : accepted) EXPECT_FALSE(f.get().keys.empty());
}

TEST(SortService, ExpiredDeadlineRejectsStructurallyAndPoolKeepsServing) {
  auto cfg = small_service();
  cfg.pool_size = 1;
  service::SortService svc(cfg);

  // Queue the doomed request behind a long-running one so its
  // (effectively immediate) deadline expires before dispatch.
  auto big = svc.submit(request_keys(std::size_t{1} << 16, 5));
  auto doomed = svc.submit(request_keys(128, 6), {/*deadline_s=*/1e-9});
  try {
    doomed.get();
    FAIL() << "expected DeadlineExceeded";
  } catch (const service::DeadlineExceeded& e) {
    EXPECT_DOUBLE_EQ(e.deadline_seconds(), 1e-9);
    EXPECT_GT(e.waited_seconds(), 0.0);
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
  }
  big.get();

  // The pool is still serving afterwards.
  auto after = request_keys(512, 8);
  auto want = after;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(svc.submit(std::move(after)).get().keys, want);

  const auto stats = svc.stats();
  EXPECT_GE(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.failed, 0u) << "a queue-side deadline rejection is not a run failure";

  // A generous deadline passes through untouched.
  auto easy = request_keys(256, 12);
  auto easy_want = easy;
  std::sort(easy_want.begin(), easy_want.end());
  EXPECT_EQ(svc.submit(std::move(easy), {/*deadline_s=*/60.0}).get().keys, easy_want);
}

TEST(SortService, RunFailureDeliversStructuredErrorAndMachineSurvives) {
  auto cfg = small_service();
  cfg.pool_size = 1;
  static fault::FaultPlan plan;  // outlives every batch run
  plan.rules = {{fault::FaultKind::kCrash, /*rank=*/1, /*exchange=*/0}};
  cfg.base.faults = &plan;
  cfg.base.watchdog_seconds = 60.0;
  service::SortService svc(cfg);

  // Sequential submits so each request is its own batch: the second
  // being served at all proves the machine survived the first's crash.
  for (int i = 0; i < 2; ++i) {
    auto fut = svc.submit(request_keys(256, static_cast<std::uint64_t>(i)));
    EXPECT_THROW(fut.get(), bsort::Error) << "round " << i;
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(SortService, StatsAreCoherent) {
  service::SortService svc(small_service());
  for (std::uint64_t i = 0; i < 12; ++i) {
    svc.submit(request_keys(100 + i, i)).get();
  }
  const auto s = svc.stats();
  EXPECT_EQ(s.submitted, 12u);
  EXPECT_EQ(s.completed, 12u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.pool_size, 2);
  EXPECT_GT(s.uptime_s, 0.0);
  EXPECT_GT(s.sorts_per_sec, 0.0);
  EXPECT_LE(s.total_p50_us, s.total_p95_us);
  EXPECT_LE(s.total_p95_us, s.total_p99_us);
  EXPECT_LE(s.total_p99_us, s.total_max_us);
  EXPECT_GE(s.batch_occupancy_mean, 1.0);
  EXPECT_GE(s.batch_occupancy_max, s.batch_occupancy_mean);
}

TEST(SortService, SubmitAfterShutdownThrows) {
  service::SortService svc(small_service());
  auto fut = svc.submit(request_keys(128, 1));
  svc.shutdown();
  EXPECT_FALSE(fut.get().keys.empty()) << "shutdown drains queued work";
  EXPECT_THROW(svc.submit(request_keys(8, 2)), service::ServiceStopped);
  svc.shutdown();  // idempotent
}

TEST(SortService, RejectsUnschedulableConstruction) {
  auto cfg = small_service();
  cfg.pool_size = 0;
  EXPECT_THROW(service::SortService bad(cfg), bsort::ConfigError);

  auto cfg2 = small_service();
  cfg2.base.nprocs = 3;  // not a power of two: no padded shape exists
  EXPECT_THROW(service::SortService bad2(cfg2), bsort::ConfigError);

  auto cfg3 = small_service();
  cfg3.retry.max_retries = -1;
  EXPECT_THROW(service::SortService bad3(cfg3), bsort::ConfigError);

  auto cfg4 = small_service();
  cfg4.quarantine_after = 0;
  EXPECT_THROW(service::SortService bad4(cfg4), bsort::ConfigError);
}

TEST(SortService, HighPriorityDispatchesBeforeEarlierLowPriority) {
  auto cfg = small_service();
  cfg.pool_size = 1;   // a single machine serializes dispatch
  cfg.max_batch = 4;   // one batch per class below
  service::SortService svc(cfg);

  // Park the machine, then enqueue LOW requests FIRST and HIGH second:
  // FIFO would dispatch the lows first; the class-aware queue must flip
  // that, which shows up as strictly smaller queue waits for every
  // high request (lows enqueued earlier AND dispatched later).
  auto park = svc.submit(request_keys(std::size_t{1} << 17, 3));
  std::vector<std::future<service::SortResult>> lows;
  std::vector<std::future<service::SortResult>> highs;
  for (std::uint64_t i = 0; i < 4; ++i) {
    lows.push_back(svc.submit(request_keys(200, i),
                              {/*deadline_s=*/0, service::Priority::kLow}));
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    highs.push_back(svc.submit(request_keys(200, 10 + i),
                               {/*deadline_s=*/0, service::Priority::kHigh}));
  }
  park.get();
  double max_high_queue_us = 0;
  for (auto& f : highs) {
    max_high_queue_us = std::max(max_high_queue_us, f.get().queue_us);
  }
  double min_low_queue_us = 1e18;
  for (auto& f : lows) {
    min_low_queue_us = std::min(min_low_queue_us, f.get().queue_us);
  }
  EXPECT_GT(min_low_queue_us, max_high_queue_us)
      << "low-priority requests submitted FIRST must still wait longer";

  const auto s = svc.stats();
  EXPECT_EQ(s.completed, 9u);
  // Both classes completed, so both class histograms are populated.
  EXPECT_GT(s.high_p99_us, 0.0);
  EXPECT_GT(s.low_p99_us, 0.0);
}

TEST(SortService, LowPriorityAdmissionIsCappedBelowQueueLimit) {
  auto cfg = small_service();
  cfg.pool_size = 1;
  cfg.max_batch = 1;
  cfg.queue_limit = 8;
  cfg.low_priority_admission = 0.25;  // low may fill only 2 slots
  service::SortService svc(cfg);

  auto park = svc.submit(request_keys(std::size_t{1} << 16, 3));
  std::vector<std::future<service::SortResult>> accepted;
  int low_rejected = 0;
  for (int i = 0; i < 8; ++i) {
    try {
      accepted.push_back(
          svc.submit(request_keys(64, 40 + static_cast<std::uint64_t>(i)),
                     {/*deadline_s=*/0, service::Priority::kLow}));
    } catch (const service::QueueFull& e) {
      ++low_rejected;
      EXPECT_EQ(e.limit(), 2u);
    }
  }
  EXPECT_GE(low_rejected, 6) << "low admission must cap at 25% of the queue";
  // High-priority still has the whole queue at its disposal.
  for (int i = 0; i < 4; ++i) {
    accepted.push_back(
        svc.submit(request_keys(64, 80 + static_cast<std::uint64_t>(i)),
                   {/*deadline_s=*/0, service::Priority::kHigh}));
  }
  park.get();
  for (auto& f : accepted) EXPECT_FALSE(f.get().keys.empty());
  EXPECT_GE(svc.stats().rejected_queue_full, 6u);
}

TEST(SortService, ShedsRequestsWhoseBudgetCannotCoverABatch) {
  auto cfg = small_service();
  cfg.pool_size = 1;
  service::SortService svc(cfg);

  // Teach the dispatcher's batch-cost EWMA a LARGE cost E with one big
  // completed request, then offer tiny requests whose ENTIRE deadline
  // is a fraction of E: unexpired at dispatch (the machine is idle, so
  // queue wait is microseconds), but with a remaining budget no batch
  // estimate says is meetable — the shed window, independent of host
  // speed because both sides of the comparison come from this run.
  const auto first =
      svc.submit(request_keys(std::size_t{1} << 17, 1)).get();
  const double e_s = first.run_us / 1e6;

  std::vector<std::future<service::SortResult>> doomed;
  for (const double mult : {0.2, 0.35, 0.5}) {
    doomed.push_back(svc.submit(request_keys(64, 7),
                                {/*deadline_s=*/mult * e_s}));
  }
  int deadline_errors = 0;
  for (auto& f : doomed) {
    try {
      f.get();
    } catch (const service::DeadlineExceeded&) {
      ++deadline_errors;
    }
  }
  const auto s = svc.stats();
  EXPECT_EQ(deadline_errors, 3);
  EXPECT_GE(s.shed, 1u) << "an unexpired but unmeetable budget must shed "
                        << "(shed=" << s.shed
                        << " rejected_deadline=" << s.rejected_deadline << ")";
  EXPECT_EQ(s.shed + s.rejected_deadline, 3u);
  EXPECT_EQ(s.failed, 0u) << "shedding is not a run failure";

  // And the pool still serves.
  auto after = request_keys(256, 9);
  auto want = after;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(svc.submit(std::move(after)).get().keys, want);
}

TEST(SortService, CancelsQueuedSiblingShardsOfAFailedRequest) {
  auto cfg = small_service();
  cfg.pool_size = 1;
  cfg.max_batch = 1;  // each shard dispatches as its own batch
  cfg.shard_threshold = 1024;
  cfg.shards_per_request = 4;
  cfg.retry.max_retries = 0;  // first failure is terminal
  static fault::FaultPlan plan;  // outlives every batch run
  plan.rules = {{fault::FaultKind::kCrash, /*rank=*/1, /*exchange=*/0}};
  cfg.base.faults = &plan;
  cfg.base.watchdog_seconds = 60.0;
  service::SortService svc(cfg);

  // The first shard's batch crashes and fails the request terminally;
  // its still-queued siblings must be dropped at dispatch instead of
  // sorting keys whose future is already failed.
  auto fut = svc.submit(request_keys(4096, 11));
  EXPECT_THROW(fut.get(), bsort::Error);
  // Drain: all sibling fragments have passed through dispatch.
  svc.shutdown();
  const auto s = svc.stats();
  EXPECT_EQ(s.failed, 1u);
  EXPECT_GE(s.cancelled, 1u)
      << "queued siblings of the failed request must be cancelled";
  EXPECT_LT(s.batches, 4u) << "cancelled shards must not consume runs";
}

TEST(SortService, ShutdownAbortFailsQueuedRequestsImmediately) {
  auto cfg = small_service();
  cfg.pool_size = 1;
  service::SortService svc(cfg);

  // Park the machine; everything queued behind it is aborted, while the
  // in-flight request is allowed to finish.  Wait for the park to leave
  // the queue so the abort cannot race its dispatch and fail it too.
  auto park = svc.submit(request_keys(std::size_t{1} << 18, 5));
  while (svc.stats().queue_depth != 0) std::this_thread::yield();
  std::vector<std::future<service::SortResult>> queued;
  for (std::uint64_t i = 0; i < 8; ++i) {
    queued.push_back(svc.submit(request_keys(128, i)));
  }
  svc.shutdown(service::ShutdownPolicy::kAbort);

  EXPECT_FALSE(park.get().keys.empty()) << "the running batch completes";
  int stopped = 0;
  for (auto& f : queued) {
    try {
      f.get();
      ADD_FAILURE() << "a queued request survived shutdown(kAbort)";
    } catch (const service::ServiceStopped&) {
      ++stopped;
    }
  }
  EXPECT_EQ(stopped, 8);
  EXPECT_THROW(svc.submit(request_keys(8, 2)), service::ServiceStopped);
  svc.shutdown(service::ShutdownPolicy::kAbort);  // idempotent
  svc.shutdown();                                 // and mixed-policy safe
}

// ---- request-lifecycle observability (DESIGN.md §11) ----------------

TEST(SortService, TraceIdsAreNonzeroDistinctAndDeterministic) {
  std::vector<std::uint64_t> first_run;
  for (int run = 0; run < 2; ++run) {
    service::SortService svc(small_service());
    std::vector<std::future<service::SortResult>> futs;
    for (std::uint64_t i = 0; i < 4; ++i) {
      futs.push_back(svc.submit(request_keys(128, i)));
    }
    std::vector<std::uint64_t> ids;
    for (auto& f : futs) {
      const auto res = f.get();
      EXPECT_NE(res.trace_id, 0u);
      ids.push_back(res.trace_id);
    }
    auto uniq = ids;
    std::sort(uniq.begin(), uniq.end());
    EXPECT_EQ(std::unique(uniq.begin(), uniq.end()), uniq.end())
        << "trace ids must be distinct within a service";
    // Minted from an admission-order sequence: a fresh service given
    // the same submission order reproduces the same IDs, so traces from
    // two runs of one workload are comparable.
    if (run == 0) {
      first_run = ids;
    } else {
      EXPECT_EQ(ids, first_run);
    }
  }
}

TEST(SortService, ErrorsCarryTheRequestTraceId) {
  auto cfg = small_service();
  cfg.pool_size = 1;
  cfg.max_batch = 1;
  cfg.queue_limit = 2;
  service::SortService svc(cfg);

  auto park = svc.submit(request_keys(std::size_t{1} << 16, 3));
  auto doomed = svc.submit(request_keys(128, 6), {/*deadline_s=*/1e-9});

  // Overfill the tiny queue: the synchronous QueueFull names the
  // REJECTED request's id (minted before admission so even rejected
  // traffic correlates with the flight recorder).
  bool rejected = false;
  std::vector<std::future<service::SortResult>> accepted;
  for (int i = 0; i < 16 && !rejected; ++i) {
    try {
      accepted.push_back(svc.submit(request_keys(64, 40 + i)));
    } catch (const service::QueueFull& e) {
      rejected = true;
      EXPECT_NE(e.trace_id(), 0u);
      EXPECT_NE(std::string(e.what()).find(bsort::util::hex_id(e.trace_id())),
                std::string::npos)
          << "what() must embed the hex trace id: " << e.what();
    }
  }
  EXPECT_TRUE(rejected);

  try {
    doomed.get();
    FAIL() << "expected DeadlineExceeded";
  } catch (const service::DeadlineExceeded& e) {
    EXPECT_NE(e.trace_id(), 0u);
    EXPECT_NE(std::string(e.what()).find(bsort::util::hex_id(e.trace_id())),
              std::string::npos);
  }
  park.get();
  for (auto& f : accepted) EXPECT_FALSE(f.get().keys.empty());
}

TEST(SortService, FlightRecorderCapturesTheLifecycle) {
  service::SortService svc(small_service());
  const auto res = svc.submit(request_keys(500, 9)).get();
  ASSERT_NE(res.trace_id, 0u);

  std::ostringstream os;
  EXPECT_GT(svc.dump_flight(os), 0u);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("bsort-flight-v1"), std::string::npos);
  const std::string id = bsort::util::hex_id(res.trace_id);
  for (const char* event : {"submitted", "enqueued", "dispatched",
                            "completed"}) {
    EXPECT_NE(dump.find(std::string("\"event\":\"") + event +
                        "\",\"request\":\"" + id + "\""),
              std::string::npos)
        << "missing " << event << " for " << id << " in:\n" << dump;
  }

  const auto s = svc.stats();
  EXPECT_GT(s.flight_recorded, 0u);
  EXPECT_EQ(s.flight_dropped, 0u);
}

TEST(SortService, StatsExposeObservabilityFields) {
  auto cfg = small_service();
  cfg.shard_threshold = 2048;
  cfg.shards_per_request = 2;
  service::SortService svc(cfg);
  svc.submit(request_keys(4096, 3)).get();  // sharded: fan-out 2
  svc.submit(request_keys(128, 4)).get();   // whole: fan-out 1
  const auto s = svc.stats();
  EXPECT_GE(s.shard_fanout_max, 2.0);
  EXPECT_GT(s.shard_fanout_mean, 1.0);
  EXPECT_LE(s.shard_fanout_mean, s.shard_fanout_max);
  EXPECT_GE(s.pool_busy, 0);
  EXPECT_LE(s.pool_busy, s.pool_size);
  EXPECT_GT(s.flight_recorded, 0u);
}

TEST(SortService, TelemetryThreadWritesSeriesAndExposition) {
  const std::string dir = ::testing::TempDir();
  const std::string jsonl = dir + "/bsort_test_telemetry.jsonl";
  const std::string prom = dir + "/bsort_test_metrics.prom";
  auto cfg = small_service();
  cfg.telemetry.interval_s = 0.01;
  cfg.telemetry.jsonl_path = jsonl;
  cfg.telemetry.prom_path = prom;
  {
    service::SortService svc(cfg);
    for (std::uint64_t i = 0; i < 6; ++i) {
      svc.submit(request_keys(200 + i, i)).get();
    }
    svc.shutdown();  // writes one final drained sample
  }

  std::ifstream jf(jsonl);
  ASSERT_TRUE(jf.is_open()) << jsonl;
  std::string line, last;
  ASSERT_TRUE(std::getline(jf, line));
  EXPECT_NE(line.find("bsort-telemetry-v1"), std::string::npos);
  int samples = 0;
  while (std::getline(jf, line)) {
    if (line.find("\"type\":\"sample\"") != std::string::npos) {
      ++samples;
      last = line;
    }
  }
  EXPECT_GE(samples, 1);
  // The final sample sees the fully drained service.
  EXPECT_NE(last.find("\"submitted\":{\"total\":6"), std::string::npos)
      << last;

  std::ifstream pf(prom);
  ASSERT_TRUE(pf.is_open()) << prom;
  std::stringstream ps;
  ps << pf.rdbuf();
  EXPECT_NE(ps.str().find("# TYPE bsort_submitted_total counter\n"
                          "bsort_submitted_total 6"),
            std::string::npos)
      << ps.str();
}

TEST(SortService, FlightDumpPathWrittenAtShutdown) {
  const std::string path =
      ::testing::TempDir() + "/bsort_test_flight_dump.jsonl";
  auto cfg = small_service();
  cfg.flight_dump_path = path;
  {
    service::SortService svc(cfg);
    svc.submit(request_keys(300, 7)).get();
  }  // destructor shuts down and dumps
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_NE(ss.str().find("bsort-flight-v1"), std::string::npos);
  EXPECT_NE(ss.str().find("\"event\":\"stopped\""), std::string::npos);
}

TEST(SortService, ExportPerfettoAfterShutdownEmitsServiceTimeline) {
  auto cfg = small_service();
  cfg.base.profile_spans = 2048;  // machine tracks ride along
  service::SortService svc(cfg);
  const auto res = svc.submit(request_keys(600, 11)).get();
  svc.shutdown();

  std::ostringstream os;
  svc.export_perfetto(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("bsort-service"), std::string::npos);
  EXPECT_NE(trace.find("\"queue\""), std::string::npos);
  EXPECT_NE(trace.find("pool slot 0"), std::string::npos);
  // The request's flow arrows carry its hex id.
  EXPECT_NE(trace.find(bsort::util::hex_id(res.trace_id)),
            std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
}

}  // namespace
