#include "loggp/cost.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "loggp/params.hpp"
#include "schedule/formulas.hpp"

namespace bsort::loggp {
namespace {

TEST(LogGP, ShortMessageRemapTime) {
  const Params p{.L = 10, .o = 2, .g = 5, .G = 0.1};
  // T = L + 2o + g (V - 1)
  EXPECT_DOUBLE_EQ(remap_time_short(p, 1), 14.0);
  EXPECT_DOUBLE_EQ(remap_time_short(p, 100), 14.0 + 5.0 * 99);
  EXPECT_DOUBLE_EQ(remap_time_short(p, 0), 0.0);
}

TEST(LogGP, LongMessageRemapTime) {
  const Params p{.L = 10, .o = 2, .g = 5, .G = 0.1};
  // T = L + 2o + G_elem (V - M) + g (M - 1), G_elem = 4 * 0.1
  EXPECT_DOUBLE_EQ(remap_time_long(p, 100, 4, 4), 14.0 + 0.4 * 96 + 5.0 * 3);
  EXPECT_DOUBLE_EQ(remap_time_long(p, 1, 1, 4), 14.0);
  EXPECT_DOUBLE_EQ(remap_time_long(p, 0, 0, 4), 0.0);
}

TEST(LogGP, TotalsEqualSumOfPerRemap) {
  const Params p = meiko_cs2();
  const std::uint64_t vols[] = {100, 200, 50};
  const std::uint64_t msgs[] = {3, 7, 1};
  double sum_short = 0, sum_long = 0;
  std::uint64_t V = 0, M = 0;
  for (int i = 0; i < 3; ++i) {
    sum_short += remap_time_short(p, vols[i]);
    sum_long += remap_time_long(p, vols[i], msgs[i], 4);
    V += vols[i];
    M += msgs[i];
  }
  EXPECT_NEAR(total_time_short(p, 3, V), sum_short, 1e-9);
  EXPECT_NEAR(total_time_long(p, 3, V, M, 4), sum_long, 1e-9);
}

TEST(LogGP, LongBeatsShortForBulk) {
  const Params p = meiko_cs2();
  EXPECT_LT(remap_time_long(p, 10000, 8, 4), remap_time_short(p, 10000) / 10);
}

TEST(LogGP, StrategyMetricsSection34) {
  // n = 2^17 keys/processor, P = 32 (the usual regime).
  const std::uint64_t n = 1u << 17;
  const std::uint64_t P = 32;
  const auto blocked = blocked_metrics(n, P);
  EXPECT_EQ(blocked.remaps, 15u);  // lgP(lgP+1)/2
  EXPECT_EQ(blocked.elements, n * 15);
  EXPECT_EQ(blocked.messages, 15u);
  const auto cyclic = cyclic_blocked_metrics(n, P);
  EXPECT_EQ(cyclic.remaps, 10u);  // 2 lg P
  EXPECT_EQ(cyclic.elements, 2 * n * (P - 1) / P * 5);
  EXPECT_EQ(cyclic.messages, 10u * 31u);
  const auto smart = smart_metrics(n, P);
  EXPECT_EQ(smart.remaps, 6u);  // lg P + 1
  EXPECT_EQ(smart.elements, n * 5);
  EXPECT_EQ(smart.messages, 3 * (P - 1) - 5);
}

TEST(LogGP, LongMessageTimeRejectsMoreMessagesThanElements) {
  // Checked precondition (was a debug-only assert): M > V would make the
  // G*(V - M) term negative and silently under-charge in Release.
  const Params p{.L = 10, .o = 2, .g = 5, .G = 0.1};
  EXPECT_THROW((void)remap_time_long(p, 4, 5, 4), std::invalid_argument);
  EXPECT_NO_THROW((void)remap_time_long(p, 4, 4, 4));
}

TEST(LogGP, CyclicBlockedMetricsExactBelowP) {
  // Regression for the divide-before-multiply truncation in
  // `2 * n * (P - 1) / P * lgP`: with n, P powers of two the quotient is
  // only exact when P | n, i.e. n >= P — below that the old expression
  // undercounted.  At n < P a critical-path processor keeps nothing and
  // sends each of its n keys as its own message, so each of the 2 lgP
  // remaps moves n keys in n messages (the traced remap loop in
  // test_trace.cpp confirms these counts against the machine).
  const auto m = cyclic_blocked_metrics(2, 8);
  EXPECT_EQ(m.remaps, 6u);
  EXPECT_EQ(m.elements, 12u);                      // old formula: 9
  EXPECT_EQ(m.messages, 12u);                      // old formula: 6 * 7 = 42
  EXPECT_NE(m.elements, 2u * 2 * (8 - 1) / 8 * 3); // the truncated value

  const auto m2 = cyclic_blocked_metrics(4, 16);
  EXPECT_EQ(m2.remaps, 8u);
  EXPECT_EQ(m2.elements, 8u * 4);
  EXPECT_EQ(m2.messages, 8u * 4);

  // At n >= P the fixed formula reduces to the thesis' closed form.
  const std::uint64_t n = 1u << 12, P = 32;
  EXPECT_EQ(cyclic_blocked_metrics(n, P).elements, 2 * n * (P - 1) / P * 5);
  EXPECT_EQ(cyclic_blocked_metrics(n, P).messages, 10 * (P - 1));
}

TEST(LogGP, SmartMetricsFallsBackOutsideUsualRegime) {
  // lgP(lgP+1)/2 = 6 > lg n = 3: the in-regime closed forms (R = lgP+1,
  // V = n lgP) are wrong here.  This used to be caught only by a debug
  // assert — Release got the wrong numbers; now the general-shape
  // schedule formulas are returned instead.
  const std::uint64_t n = 8, P = 8;
  const auto m = smart_metrics(n, P);
  EXPECT_EQ(m.remaps, schedule::smart_remap_count(3, 3));
  EXPECT_EQ(m.elements, schedule::smart_volume_per_proc(3, 3));
  EXPECT_EQ(m.messages, schedule::smart_messages_per_proc(3, 3));
  EXPECT_NE(m.remaps, 4u);  // lgP + 1: the pre-fix Release value

  // P = 1: no communication at all (the closed form would say R = 1).
  const auto solo = smart_metrics(1u << 10, 1);
  EXPECT_EQ(solo.remaps, 0u);
  EXPECT_EQ(solo.elements, 0u);
  EXPECT_EQ(solo.messages, 0u);
}

TEST(LogGP, BlockedMetricsSaturateInsteadOfWrapping) {
  // n * R would overflow 64 bits; the prediction must pin to UINT64_MAX
  // (an "infinitely bad" strategy), not wrap to something small that
  // choose_strategy would then prefer.
  const auto m = blocked_metrics(std::uint64_t{1} << 62, 256);
  EXPECT_EQ(m.remaps, 36u);
  EXPECT_EQ(m.elements, std::numeric_limits<std::uint64_t>::max());
}

TEST(LogGP, SmartOptimalUnderLogP) {
  // Under short messages the smart strategy minimizes communication time
  // among the three (Section 3.4.2).
  const Params p = meiko_cs2();
  const std::uint64_t n = 1u << 17;
  const std::uint64_t P = 32;
  const auto b = blocked_metrics(n, P);
  const auto c = cyclic_blocked_metrics(n, P);
  const auto s = smart_metrics(n, P);
  const double tb = total_time_short(p, b.remaps, b.elements);
  const double tc = total_time_short(p, c.remaps, c.elements);
  const double ts = total_time_short(p, s.remaps, s.elements);
  EXPECT_LT(ts, tc);
  EXPECT_LT(tc, tb);
}

TEST(LogGP, BlockedSendsFewestLongMessages) {
  // Section 3.4.3: with respect to message count the blocked strategy is
  // best.
  const std::uint64_t n = 1u << 17;
  const std::uint64_t P = 32;
  EXPECT_LT(blocked_metrics(n, P).messages, smart_metrics(n, P).messages);
  EXPECT_LT(smart_metrics(n, P).messages, cyclic_blocked_metrics(n, P).messages);
}

TEST(LogGP, MeikoPreset) {
  const auto p = meiko_cs2();
  EXPECT_GT(p.g, p.o);
  EXPECT_GT(p.L, 0);
  EXPECT_LT(p.G_per_element(4), p.g);  // long messages pay less per key
}

}  // namespace
}  // namespace bsort::loggp
