// Unit tests for the fault subsystem and the hardened Machine:
// structured errors, exchange validation, the Proc::timed contract,
// the barrier watchdog, integrity checking, fault injection, and the
// api self-check.  The broad randomized coverage lives in
// test_chaos.cpp (stress binary); these are the tight, deterministic
// cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "api/parallel_sort.hpp"
#include "fault/error.hpp"
#include "fault/plan.hpp"
#include "fault/retry.hpp"
#include "simd/machine.hpp"
#include "util/random.hpp"

namespace {

using bsort::BarrierTimeout;
using bsort::ConfigError;
using bsort::ExchangeError;
using bsort::IntegrityError;
namespace api = bsort::api;
namespace fault = bsort::fault;
namespace simd = bsort::simd;

simd::Machine make_machine(int nprocs) {
  return simd::Machine(nprocs, bsort::loggp::meiko_cs2(), simd::MessageMode::kLong);
}

/// One ring exchange: each VP sends `len` salted words to rank+1 and
/// receives from rank-1; returns the received words through `got`.
void ring_once(simd::Proc& p, std::size_t len, std::vector<std::uint32_t>* got = nullptr) {
  const auto P = static_cast<std::uint64_t>(p.nprocs());
  const auto r = static_cast<std::uint64_t>(p.rank());
  const std::uint64_t to[1] = {(r + 1) % P};
  const std::uint64_t from[1] = {(r + P - 1) % P};
  const std::size_t sizes[1] = {len};
  p.open_exchange(to, sizes, from);
  auto slot = p.send_slot(0);
  for (std::size_t j = 0; j < len; ++j) {
    slot[j] = static_cast<std::uint32_t>(r * 1000 + j);
  }
  p.commit_exchange();
  const auto v = p.recv_view(0);
  if (got != nullptr) got->assign(v.begin(), v.end());
}

/// The machine must stay fully usable after any failed run.
void expect_reusable(simd::Machine& m) {
  std::vector<std::vector<std::uint32_t>> got(static_cast<std::size_t>(m.nprocs()));
  m.run([&](simd::Proc& p) {
    ring_once(p, 4, &got[static_cast<std::size_t>(p.rank())]);
  });
  for (int r = 0; r < m.nprocs(); ++r) {
    const auto src = static_cast<std::uint32_t>((r + m.nprocs() - 1) % m.nprocs());
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), 4u);
    EXPECT_EQ(got[static_cast<std::size_t>(r)][0], src * 1000);
  }
}

// ---- structured error hierarchy -------------------------------------

TEST(FaultError, ContextIsEmbeddedInWhatAndAccessible) {
  const bsort::Error e("boom", {3, 17, 2});
  EXPECT_EQ(e.rank(), 3);
  EXPECT_EQ(e.exchange_ordinal(), 17);
  EXPECT_EQ(e.context().remap, 2);
  const std::string what = e.what();
  EXPECT_NE(what.find("boom"), std::string::npos);
  EXPECT_NE(what.find("vp 3"), std::string::npos);
  EXPECT_NE(what.find("exchange 17"), std::string::npos);
  EXPECT_NE(what.find("remap 2"), std::string::npos);
}

TEST(FaultError, ContextlessErrorHasPlainWhat) {
  const bsort::Error e("plain failure");
  EXPECT_STREQ(e.what(), "plain failure");
  EXPECT_EQ(e.rank(), -1);
}

TEST(FaultError, SubtypesDeriveFromErrorAndRuntimeError) {
  const ExchangeError xe("x", {1, 2, -1}, 5, 0);
  EXPECT_EQ(xe.peer(), 5);
  EXPECT_EQ(xe.slot(), 0);
  const IntegrityError ie("i", {0, 0, -1}, 3, 1);
  EXPECT_EQ(ie.sender(), 3);
  const BarrierTimeout bt(0.5, {{0, "barrier", 7, 123.0}});
  EXPECT_DOUBLE_EQ(bt.deadline_seconds(), 0.5);
  ASSERT_EQ(bt.states().size(), 1u);
  EXPECT_STREQ(bt.states()[0].where, "barrier");
  const std::string what = bt.what();
  EXPECT_NE(what.find("watchdog"), std::string::npos);
  EXPECT_NE(what.find("7 exchanges"), std::string::npos);
  // The whole hierarchy stays catchable as std::runtime_error.
  EXPECT_NE(dynamic_cast<const std::runtime_error*>(static_cast<const bsort::Error*>(&xe)),
            nullptr);
}

// ---- open_exchange validation ---------------------------------------

TEST(ExchangeValidation, LengthMismatchThrows) {
  auto m = make_machine(2);
  EXPECT_THROW(m.run([](simd::Proc& p) {
    const std::uint64_t peers[1] = {static_cast<std::uint64_t>(1 - p.rank())};
    const std::size_t sizes[2] = {1, 1};  // one peer, two sizes
    p.open_exchange(peers, sizes, peers);
  }),
               ExchangeError);
  expect_reusable(m);
}

TEST(ExchangeValidation, OutOfRangePeerThrowsWithPeerContext) {
  auto m = make_machine(2);
  try {
    m.run([](simd::Proc& p) {
      const std::uint64_t peers[1] = {99};
      const std::size_t sizes[1] = {1};
      p.open_exchange(peers, sizes, peers);
    });
    FAIL() << "expected ExchangeError";
  } catch (const ExchangeError& e) {
    EXPECT_EQ(e.peer(), 99);
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  expect_reusable(m);
}

TEST(ExchangeValidation, DuplicateSendPeerThrows) {
  auto m = make_machine(4);
  EXPECT_THROW(m.run([](simd::Proc& p) {
    const auto other = static_cast<std::uint64_t>((p.rank() + 1) % p.nprocs());
    const std::uint64_t peers[2] = {other, other};
    const std::size_t sizes[2] = {1, 1};
    const std::uint64_t recv[1] = {static_cast<std::uint64_t>(p.rank())};
    p.open_exchange(peers, sizes, recv);
  }),
               ExchangeError);
  expect_reusable(m);
}

TEST(ExchangeValidation, DuplicateRecvPeerThrows) {
  auto m = make_machine(4);
  EXPECT_THROW(m.run([](simd::Proc& p) {
    const auto other = static_cast<std::uint64_t>((p.rank() + 1) % p.nprocs());
    const std::uint64_t send[1] = {other};
    const std::size_t sizes[1] = {1};
    const std::uint64_t recv[2] = {other, other};
    p.open_exchange(send, sizes, recv);
  }),
               ExchangeError);
  expect_reusable(m);
}

TEST(ExchangeValidation, SelfPeerAllowedOncePerList) {
  auto m = make_machine(2);
  // One self entry in each list is legal (the kept portion)...
  std::vector<std::uint32_t> kept(static_cast<std::size_t>(m.nprocs()));
  m.run([&](simd::Proc& p) {
    const auto self = static_cast<std::uint64_t>(p.rank());
    const std::uint64_t peers[1] = {self};
    const std::size_t sizes[1] = {1};
    p.open_exchange(peers, sizes, peers);
    p.send_slot(0)[0] = static_cast<std::uint32_t>(p.rank()) + 7;
    p.commit_exchange();
    kept[static_cast<std::size_t>(p.rank())] = p.recv_view(0)[0];
  });
  EXPECT_EQ(kept[0], 7u);
  EXPECT_EQ(kept[1], 8u);
  // ...but twice is a duplicate like any other.
  EXPECT_THROW(m.run([](simd::Proc& p) {
    const auto self = static_cast<std::uint64_t>(p.rank());
    const std::uint64_t peers[2] = {self, self};
    const std::size_t sizes[2] = {1, 1};
    p.open_exchange(peers, sizes, peers);
  }),
               ExchangeError);
  expect_reusable(m);
}

TEST(ExchangeValidation, ProtocolOrderViolationsThrow) {
  auto m = make_machine(2);
  // commit without open
  EXPECT_THROW(m.run([](simd::Proc& p) { p.commit_exchange(); }), ExchangeError);
  // send_slot without open
  EXPECT_THROW(m.run([](simd::Proc& p) { (void)p.send_slot(0); }), ExchangeError);
  // open while already open
  EXPECT_THROW(m.run([](simd::Proc& p) {
    const std::uint64_t peers[1] = {static_cast<std::uint64_t>(1 - p.rank())};
    const std::size_t sizes[1] = {1};
    p.open_exchange(peers, sizes, peers);
    p.open_exchange(peers, sizes, peers);
  }),
               ExchangeError);
  // slot index out of range
  EXPECT_THROW(m.run([](simd::Proc& p) {
    const std::uint64_t peers[1] = {static_cast<std::uint64_t>(1 - p.rank())};
    const std::size_t sizes[1] = {1};
    p.open_exchange(peers, sizes, peers);
    (void)p.send_slot(3);
  }),
               ExchangeError);
  // recv index out of range
  EXPECT_THROW(m.run([](simd::Proc& p) {
    ring_once(p, 2);
    (void)p.recv_view(1);
  }),
               ExchangeError);
  expect_reusable(m);
}

// ---- Proc::timed contract -------------------------------------------

TEST(TimedContract, BarrierInsideTimedThrowsConfigError) {
  auto m = make_machine(2);
  EXPECT_THROW(m.run([](simd::Proc& p) {
    p.timed(simd::Phase::kCompute, [&] { p.barrier(); });
  }),
               ConfigError);
  expect_reusable(m);
}

TEST(TimedContract, ExchangeCallsInsideTimedThrowConfigError) {
  auto m = make_machine(2);
  EXPECT_THROW(m.run([](simd::Proc& p) {
    p.timed(simd::Phase::kPack, [&] {
      const std::uint64_t peers[1] = {static_cast<std::uint64_t>(1 - p.rank())};
      const std::size_t sizes[1] = {1};
      p.open_exchange(peers, sizes, peers);
    });
  }),
               ConfigError);
  EXPECT_THROW(m.run([](simd::Proc& p) {
    const std::uint64_t peers[1] = {static_cast<std::uint64_t>(1 - p.rank())};
    const std::size_t sizes[1] = {1};
    p.open_exchange(peers, sizes, peers);
    p.timed(simd::Phase::kPack, [&] { p.commit_exchange(); });
  }),
               ConfigError);
  expect_reusable(m);
}

TEST(TimedContract, NestedTimedThrowsConfigError) {
  auto m = make_machine(2);
  EXPECT_THROW(m.run([](simd::Proc& p) {
    p.timed(simd::Phase::kCompute,
            [&] { p.timed(simd::Phase::kCompute, [] {}); });
  }),
               ConfigError);
  expect_reusable(m);
}

TEST(TimedContract, RecvViewInsideTimedIsAllowed) {
  // remap_exec unpacks inside timed(kUnpack); that must keep working.
  auto m = make_machine(2);
  std::array<std::uint32_t, 2> got{};
  m.run([&](simd::Proc& p) {
    ring_once(p, 2);
    p.timed(simd::Phase::kUnpack, [&] {
      got[static_cast<std::size_t>(p.rank())] = p.recv_view(0)[1];
    });
  });
  EXPECT_EQ(got[0], 1001u);
  EXPECT_EQ(got[1], 1u);
}

// ---- barrier watchdog -----------------------------------------------

TEST(Watchdog, NegativeDeadlineThrows) {
  auto m = make_machine(2);
  EXPECT_THROW(m.set_watchdog(-1.0), ConfigError);
}

TEST(Watchdog, ExpiryDiagnosesEveryVpAndMachineStaysUsable) {
  auto m = make_machine(2);
  m.set_watchdog(0.05);
  try {
    m.run([](simd::Proc& p) {
      if (p.rank() == 0) {
        // Real (host) stall in user code, long past the deadline; rank 1
        // parks in the barrier meanwhile.
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
      }
      p.barrier();
    });
    FAIL() << "expected BarrierTimeout";
  } catch (const BarrierTimeout& e) {
    EXPECT_DOUBLE_EQ(e.deadline_seconds(), 0.05);
    ASSERT_EQ(e.states().size(), 2u);
    EXPECT_EQ(e.states()[0].rank, 0);
    EXPECT_EQ(e.states()[1].rank, 1);
    // The non-stalling VP published its barrier entry before the expiry.
    EXPECT_STREQ(e.states()[1].where, "barrier");
    EXPECT_NE(std::string(e.what()).find("vp 1: barrier"), std::string::npos);
  }
  m.set_watchdog(0);
  expect_reusable(m);
}

TEST(Watchdog, FastRunUnderDeadlinePasses) {
  auto m = make_machine(4);
  m.set_watchdog(30.0);
  expect_reusable(m);
  EXPECT_DOUBLE_EQ(m.watchdog_seconds(), 30.0);
}

// ---- fault plans -----------------------------------------------------

TEST(FaultPlan, RandomIsDeterministicAndInRange) {
  const std::array<fault::FaultKind, 5> kinds = {
      fault::FaultKind::kStraggler, fault::FaultKind::kCrash,
      fault::FaultKind::kCorrupt, fault::FaultKind::kTruncate,
      fault::FaultKind::kOversize};
  const auto a = fault::FaultPlan::random(42, 8, 10, kinds, 5);
  const auto b = fault::FaultPlan::random(42, 8, 10, kinds, 5);
  ASSERT_EQ(a.rules.size(), 5u);
  ASSERT_EQ(b.rules.size(), 5u);
  for (std::size_t i = 0; i < a.rules.size(); ++i) {
    EXPECT_EQ(a.rules[i].kind, b.rules[i].kind);
    EXPECT_EQ(a.rules[i].rank, b.rules[i].rank);
    EXPECT_EQ(a.rules[i].exchange, b.rules[i].exchange);
    EXPECT_EQ(a.rules[i].bit, b.rules[i].bit);
    EXPECT_EQ(a.rules[i].delta, b.rules[i].delta);
    EXPECT_GE(a.rules[i].rank, 0);
    EXPECT_LT(a.rules[i].rank, 8);
    EXPECT_LE(a.rules[i].exchange, 10u);
    EXPECT_LE(a.rules[i].real_ms, fault::kMaxRealStallMs);
    EXPECT_GE(a.rules[i].delta, 1u);
    EXPECT_LE(a.rules[i].delta, fault::kMaxSizeDelta);
  }
  const auto c = fault::FaultPlan::random(43, 8, 10, kinds, 5);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.rules.size(); ++i) {
    any_diff = any_diff || c.rules[i].bit != a.rules[i].bit;
  }
  EXPECT_TRUE(any_diff);
  const std::string desc = fault::describe(a);
  EXPECT_NE(desc.find("\"type\":\"fault_plan\""), std::string::npos);
  EXPECT_NE(desc.find("\"seed\":42"), std::string::npos);
}

TEST(FaultPlan, ArmRejectsOutOfRangeVictim) {
  auto m = make_machine(2);
  fault::FaultPlan plan;
  plan.rules.push_back({fault::FaultKind::kCrash, 7, 0, 0, 0, 0, 1});
  EXPECT_THROW(m.arm_faults(plan), ConfigError);
  EXPECT_FALSE(m.faults_armed());
}

TEST(FaultInjection, CrashBecomesStructuredErrorAndMachineRecovers) {
  auto m = make_machine(4);
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.rules.push_back({fault::FaultKind::kCrash, 1, 0, 0, 0, 0, 1});
  m.arm_faults(plan);
  try {
    m.run([](simd::Proc& p) { ring_once(p, 4); });
    FAIL() << "expected ExchangeError";
  } catch (const ExchangeError& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.exchange_ordinal(), 0);
    EXPECT_NE(std::string(e.what()).find("injected fault: crash"), std::string::npos);
  }
  EXPECT_EQ(m.faults_fired(), 1u);
  m.disarm_faults();
  expect_reusable(m);
}

TEST(FaultInjection, StragglerChargesSimulatedTimeAndMarksTrace) {
  auto m = make_machine(2);
  m.enable_tracing(16);
  fault::FaultPlan plan;
  plan.rules.push_back(
      {fault::FaultKind::kStraggler, 0, 0, /*delay_us=*/5000.0, /*real_ms=*/1.0, 0, 1});
  m.arm_faults(plan);
  const auto rep = m.run([](simd::Proc& p) { ring_once(p, 4); });
  EXPECT_EQ(m.faults_fired(), 1u);
  // The commit barrier propagates the victim's skew to every clock.
  EXPECT_GE(rep.makespan_us, 5000.0);
  ASSERT_GE(m.vp_trace(0).size(), 1u);
  EXPECT_EQ(m.vp_trace(0)[0].fault_mask & bsort::trace::kFaultStraggler,
            bsort::trace::kFaultStraggler);
  EXPECT_EQ(m.vp_trace(1)[0].fault_mask, 0u);
  m.disarm_faults();
}

TEST(FaultInjection, RuleWaitsForItsExchangeOrdinal) {
  auto m = make_machine(2);
  fault::FaultPlan plan;
  plan.rules.push_back({fault::FaultKind::kCrash, 0, 2, 0, 0, 0, 1});
  m.arm_faults(plan);
  try {
    m.run([](simd::Proc& p) {
      for (int i = 0; i < 4; ++i) ring_once(p, 2);
    });
    FAIL() << "expected ExchangeError";
  } catch (const ExchangeError& e) {
    EXPECT_EQ(e.exchange_ordinal(), 2);
  }
  m.disarm_faults();
  expect_reusable(m);
}

// ---- exchange integrity ---------------------------------------------

TEST(Integrity, CorruptionIsCaughtWithSenderAndSlot) {
  auto m = make_machine(4);
  m.enable_integrity();
  fault::FaultPlan plan;
  plan.rules.push_back({fault::FaultKind::kCorrupt, 1, 0, 0, 0, /*bit=*/37, 1});
  m.arm_faults(plan);
  try {
    m.run([](simd::Proc& p) { ring_once(p, 8); });
    FAIL() << "expected IntegrityError";
  } catch (const IntegrityError& e) {
    EXPECT_EQ(e.sender(), 1);   // the victim's payload...
    EXPECT_EQ(e.rank(), 2);     // ...fails verification at its receiver
    EXPECT_EQ(e.slot(), 0);
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos);
  }
  EXPECT_EQ(m.faults_fired(), 1u);
  m.disarm_faults();
  m.disable_integrity();
  expect_reusable(m);
}

TEST(Integrity, TruncateAndOversizeAreCaughtAsSizeMismatch) {
  for (const auto kind : {fault::FaultKind::kTruncate, fault::FaultKind::kOversize}) {
    auto m = make_machine(4);
    m.enable_integrity();
    fault::FaultPlan plan;
    plan.rules.push_back({kind, 2, 0, 0, 0, 0, /*delta=*/3});
    m.arm_faults(plan);
    try {
      m.run([](simd::Proc& p) { ring_once(p, 8); });
      FAIL() << "expected IntegrityError for " << fault::fault_kind_name(kind);
    } catch (const IntegrityError& e) {
      EXPECT_EQ(e.sender(), 2);
      EXPECT_NE(std::string(e.what()).find("size mismatch"), std::string::npos);
    }
    m.disarm_faults();
    m.disable_integrity();
    expect_reusable(m);
  }
}

TEST(Integrity, OffMeansCorruptionPassesSilently) {
  // The control experiment: without enable_integrity() the same plan
  // delivers damaged bytes and nothing notices at the machine layer.
  auto m = make_machine(2);
  fault::FaultPlan plan;
  plan.rules.push_back({fault::FaultKind::kCorrupt, 0, 0, 0, 0, /*bit=*/5, 1});
  m.arm_faults(plan);
  std::vector<std::uint32_t> got;
  m.run([&](simd::Proc& p) {
    std::vector<std::uint32_t> mine;
    ring_once(p, 4, &mine);
    if (p.rank() == 1) got = mine;
  });
  EXPECT_EQ(m.faults_fired(), 1u);
  // Exactly bit 5 of word 0 differs from what rank 0 packed.
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0], 0u ^ (1u << 5));
  m.disarm_faults();
}

TEST(Integrity, CleanRunWithIntegrityOnPasses) {
  auto m = make_machine(4);
  m.enable_integrity();
  expect_reusable(m);
  EXPECT_TRUE(m.integrity());
}

// ---- api hardening ---------------------------------------------------

TEST(ApiHardening, InvalidConfigThrowsConfigErrorNotAssert) {
  std::vector<std::uint32_t> keys(100, 1);  // not a power of two
  api::Config cfg;
  cfg.nprocs = 4;
  EXPECT_THROW(api::parallel_sort(keys, cfg), ConfigError);
}

TEST(ApiHardening, MachineShapeMismatchThrows) {
  auto m = make_machine(2);
  std::vector<std::uint32_t> keys(128, 1);
  api::Config cfg;
  cfg.nprocs = 4;
  EXPECT_THROW(api::parallel_sort_on(m, keys, cfg), ConfigError);
}

TEST(ApiHardening, SelfCheckPassesOnCleanRun) {
  std::vector<std::uint32_t> keys = bsort::util::generate_keys(256, bsort::util::KeyDistribution::kUniform31, 99);
  api::Config cfg;
  cfg.nprocs = 4;
  cfg.self_check = true;
  cfg.integrity = true;
  cfg.watchdog_seconds = 60;
  const auto out = api::parallel_sort(keys, cfg);
  EXPECT_TRUE(out.sorted);
  EXPECT_EQ(out.faults_fired, 0u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(ApiHardening, SelfCheckCatchesCorruptionWhenIntegrityIsOff) {
  std::vector<std::uint32_t> keys = bsort::util::generate_keys(256, bsort::util::KeyDistribution::kUniform31, 7);
  fault::FaultPlan plan;
  plan.rules.push_back({fault::FaultKind::kCorrupt, 1, 0, 0, 0, /*bit=*/613, 1});
  api::Config cfg;
  cfg.nprocs = 4;
  cfg.self_check = true;
  cfg.integrity = false;  // the last line of defense must catch it alone
  cfg.faults = &plan;
  EXPECT_THROW((void)api::parallel_sort(keys, cfg), IntegrityError);
}

TEST(ApiHardening, DirectSortShapeErrorsAreConfigErrors) {
  // Sorts called below the api facade report bad shapes structurally too.
  auto m = make_machine(4);
  std::vector<std::uint32_t> keys(4 * 3, 1);  // 3 keys/proc: not a power of two
  EXPECT_THROW(m.run([&](simd::Proc& p) {
    std::span<std::uint32_t> slice(keys.data() + p.rank() * 3, 3);
    bsort::bitonic::blocked_merge_sort(p, slice);
  }),
               ConfigError);
  expect_reusable(m);
}

// ---- post-exception machine reuse across every algorithm -------------

TEST(MachineReuse, CleanSortSucceedsAfterInjectedCrashForEveryAlgorithm) {
  constexpr int kProcs = 4;
  constexpr std::size_t kTotal = 128;  // 32 keys/proc: valid for all algorithms
  const std::array<api::Algorithm, 7> algorithms = {
      api::Algorithm::kSmartBitonic, api::Algorithm::kCyclicBlockedBitonic,
      api::Algorithm::kBlockedMergeBitonic, api::Algorithm::kNaiveBitonic,
      api::Algorithm::kParallelRadix, api::Algorithm::kSampleSort,
      api::Algorithm::kColumnSort};

  auto m = make_machine(kProcs);
  fault::FaultPlan crash;
  crash.rules.push_back({fault::FaultKind::kCrash, 1, 0, 0, 0, 0, 1});

  for (const auto algorithm : algorithms) {
    api::Config cfg;
    cfg.nprocs = kProcs;
    cfg.algorithm = algorithm;
    ASSERT_TRUE(api::config_valid(cfg, kTotal));

    auto keys = bsort::util::generate_keys(kTotal, bsort::util::KeyDistribution::kUniform31, 1234);
    cfg.faults = &crash;
    EXPECT_THROW((void)api::parallel_sort_on(m, keys, cfg), bsort::Error)
        << api::algorithm_name(algorithm);
    EXPECT_FALSE(m.faults_armed());  // parallel_sort_on disarms on exit

    // The same machine, fresh keys, no faults: must sort cleanly.
    keys = bsort::util::generate_keys(kTotal, bsort::util::KeyDistribution::kUniform31, 5678);
    cfg.faults = nullptr;
    cfg.self_check = true;
    const auto out = api::parallel_sort_on(m, keys, cfg);
    EXPECT_TRUE(out.sorted) << api::algorithm_name(algorithm);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()))
        << api::algorithm_name(algorithm);
  }
}

// ---- failure taxonomy + retry policy (fault/retry.hpp) --------------

std::exception_ptr as_ptr(auto&& e) {
  return std::make_exception_ptr(std::forward<decltype(e)>(e));
}

TEST(RetryTaxonomy, ClassifiesTransientVsDeterministicFailures) {
  using fault::FailureClass;
  // Transient causes: worth one more superstep.
  EXPECT_EQ(fault::classify_failure(
                as_ptr(BarrierTimeout(1.0, {}))),
            FailureClass::kRetryable);
  EXPECT_EQ(fault::classify_failure(as_ptr(IntegrityError("bit flip"))),
            FailureClass::kRetryable);
  EXPECT_EQ(fault::classify_failure(as_ptr(ExchangeError("crash"))),
            FailureClass::kRetryable);
  EXPECT_TRUE(fault::is_retryable(as_ptr(ExchangeError("crash"))));

  // Deterministic causes: the same attempt fails the same way.
  EXPECT_EQ(fault::classify_failure(as_ptr(ConfigError("bad shape"))),
            FailureClass::kTerminal);
  // Unknown Error subtypes and non-bsort exceptions don't earn retries.
  EXPECT_EQ(fault::classify_failure(as_ptr(bsort::Error("unknown"))),
            FailureClass::kTerminal);
  EXPECT_EQ(fault::classify_failure(as_ptr(std::runtime_error("plain"))),
            FailureClass::kTerminal);
  EXPECT_EQ(fault::classify_failure(nullptr), FailureClass::kTerminal);
  EXPECT_FALSE(fault::is_retryable(nullptr));

  EXPECT_STREQ(fault::failure_class_name(FailureClass::kRetryable),
               "retryable");
  EXPECT_STREQ(fault::failure_class_name(FailureClass::kTerminal), "terminal");
}

TEST(RetryTaxonomy, BackoffIsCappedExponentialWithDeterministicJitter) {
  fault::RetryPolicy p;
  p.base_ms = 2.0;
  p.max_ms = 16.0;
  p.jitter = 0.0;
  // No jitter: exact capped doubling.
  EXPECT_DOUBLE_EQ(fault::backoff_ms(p, 1, 7), 2.0);
  EXPECT_DOUBLE_EQ(fault::backoff_ms(p, 2, 7), 4.0);
  EXPECT_DOUBLE_EQ(fault::backoff_ms(p, 3, 7), 8.0);
  EXPECT_DOUBLE_EQ(fault::backoff_ms(p, 4, 7), 16.0);
  EXPECT_DOUBLE_EQ(fault::backoff_ms(p, 5, 7), 16.0);   // capped
  EXPECT_DOUBLE_EQ(fault::backoff_ms(p, 60, 7), 16.0);  // no overflow
  EXPECT_DOUBLE_EQ(fault::backoff_ms(p, 0, 7), 2.0);    // clamped to 1

  // Jitter shortens (never lengthens), is deterministic in the seed,
  // and distinct seeds decorrelate.
  p.jitter = 0.5;
  const double a = fault::backoff_ms(p, 3, 42);
  EXPECT_DOUBLE_EQ(a, fault::backoff_ms(p, 3, 42));
  EXPECT_GT(a, 8.0 * 0.5 - 1e-12);
  EXPECT_LE(a, 8.0);
  bool differs = false;
  for (std::uint64_t s = 0; s < 8 && !differs; ++s) {
    differs = fault::backoff_ms(p, 3, s) != a;
  }
  EXPECT_TRUE(differs) << "jitter must vary across seeds";
}

}  // namespace
