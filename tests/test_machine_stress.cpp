// Barrier-protocol stress: many VPs, randomized per-VP host delays, and
// repeated run() calls on one Machine, mixing the pooled exchange API
// with the legacy vector API.  The assertions are deliberately about
// protocol correctness (right payloads, right sizes, machine reusable),
// not timing; the interesting part is what ThreadSanitizer sees.  Build
// with -DBSORT_SANITIZE=thread and run this binary to validate the
// happens-before edges of the arena/mailbox protocol.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <numeric>
#include <random>
#include <thread>

#include "loggp/params.hpp"
#include "simd/machine.hpp"

namespace bsort::simd {
namespace {

TEST(MachineStress, RepeatedRunsRandomDelaysAllToAll) {
  const int P = 16;
  Machine m(P, loggp::meiko_cs2(), MessageMode::kLong);
  std::vector<std::uint64_t> peers(P);
  std::iota(peers.begin(), peers.end(), 0);

  for (int round = 0; round < 6; ++round) {
    auto rep = m.run([&](Proc& p) {
      // Deterministic per-(rank, round) stream; only host scheduling is
      // randomized, so failures reproduce.
      std::mt19937 rng(static_cast<unsigned>(p.rank() * 7919 + round * 104729));
      std::uniform_int_distribution<int> delay_us(0, 40);

      for (int step = 0; step < 10; ++step) {
        // Jitter barrier arrival order.
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us(rng)));

        // Pooled all-to-all: rank r sends (r + step) % 5 copies of the
        // value r*31 + step to everyone (self included).
        std::vector<std::size_t> sizes(
            P, static_cast<std::size_t>((p.rank() + step) % 5));
        p.open_exchange(peers, sizes, peers);
        for (int d = 0; d < P; ++d) {
          auto slot = p.send_slot(static_cast<std::size_t>(d));
          std::fill(slot.begin(), slot.end(),
                    static_cast<std::uint32_t>(p.rank() * 31 + step));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us(rng)));
        p.commit_exchange();
        for (int s = 0; s < P; ++s) {
          const auto v = p.recv_view(static_cast<std::size_t>(s));
          ASSERT_EQ(v.size(), static_cast<std::size_t>((s + step) % 5));
          for (const auto x : v) {
            ASSERT_EQ(x, static_cast<std::uint32_t>(s * 31 + step));
          }
        }

        // Interleave the legacy vector API on even steps (exercises the
        // wrapper's interaction with the shared arena/mailbox).
        if (step % 2 == 0) {
          const auto partner = static_cast<std::uint64_t>(p.rank() ^ 1);
          auto got = p.exchange_with(
              partner, {static_cast<std::uint32_t>(p.rank()),
                        static_cast<std::uint32_t>(step)});
          ASSERT_EQ(got.size(), 2u);
          ASSERT_EQ(got[0], static_cast<std::uint32_t>(partner));
          ASSERT_EQ(got[1], static_cast<std::uint32_t>(step));
        }
        p.barrier();
      }
    });
    EXPECT_EQ(rep.proc_us.size(), static_cast<std::size_t>(P));
    // 10 pooled + 5 legacy exchanges per VP per run.
    for (const auto& c : rep.proc_comm) EXPECT_EQ(c.exchanges, 15u);
  }
}

TEST(MachineStress, PoisonUnderLoadThenRecover) {
  // A random VP dies mid-protocol each round; the rest must unwind from
  // whatever barrier they are parked in, and the next (healthy) run on
  // the same Machine must behave normally.
  const int P = 16;
  Machine m(P, loggp::meiko_cs2(), MessageMode::kLong);
  std::vector<std::uint64_t> peers(P);
  std::iota(peers.begin(), peers.end(), 0);

  for (int round = 0; round < 4; ++round) {
    const int victim = (round * 5) % P;
    EXPECT_THROW(
        m.run([&](Proc& p) {
          std::mt19937 rng(static_cast<unsigned>(p.rank() + round));
          std::uniform_int_distribution<int> delay_us(0, 30);
          for (int step = 0; step < 4; ++step) {
            std::this_thread::sleep_for(std::chrono::microseconds(delay_us(rng)));
            if (p.rank() == victim && step == 2) {
              throw std::runtime_error("victim died");
            }
            const std::vector<std::size_t> sizes(P, 3);
            p.open_exchange(peers, sizes, peers);
            for (int d = 0; d < P; ++d) {
              auto slot = p.send_slot(static_cast<std::size_t>(d));
              std::fill(slot.begin(), slot.end(), 0u);
            }
            p.commit_exchange();
          }
        }),
        std::runtime_error);

    m.run([&](Proc& p) {
      const std::vector<std::size_t> sizes(P, 1);
      p.open_exchange(peers, sizes, peers);
      for (int d = 0; d < P; ++d) {
        p.send_slot(static_cast<std::size_t>(d))[0] =
            static_cast<std::uint32_t>(p.rank());
      }
      p.commit_exchange();
      for (int s = 0; s < P; ++s) {
        ASSERT_EQ(p.recv_view(static_cast<std::size_t>(s))[0],
                  static_cast<std::uint32_t>(s));
      }
    });
  }
}

TEST(MachineStress, ShardedTimingFallback) {
  // Force the coarse-clock fallback path (sharded timing locks +
  // monotonic measurement) and make sure timed sections still charge
  // and the protocol still completes.
  setenv("BSORT_FORCE_SHARDED_TIMING", "1", 1);
  Machine m(8, loggp::meiko_cs2(), MessageMode::kLong);
  unsetenv("BSORT_FORCE_SHARDED_TIMING");
  EXPECT_FALSE(m.concurrent_timing());

  auto rep = m.run([&](Proc& p) {
    for (int step = 0; step < 5; ++step) {
      p.timed(Phase::kCompute, [] {
        volatile double sink = 0;
        double acc = 0;
        for (int i = 0; i < 50000; ++i) acc += static_cast<double>(i);
        sink = acc;
        (void)sink;
      });
      // The timed section must be fully closed before the barrier (the
      // shard lock may not be held across it); this ordering is exactly
      // what the exchange call sites rely on.
      const auto partner = static_cast<std::uint64_t>(p.rank() ^ 1);
      p.exchange_with(partner, {static_cast<std::uint32_t>(step)});
    }
  });
  for (const auto& ph : rep.proc_phases) EXPECT_GT(ph.compute(), 0.0);
}

TEST(MachineStress, ThreadTimingForced) {
  // Exercise the lock-free thread-CPU timing path regardless of what
  // the probe would pick on this host (single-core CI boxes default to
  // the sharded fallback).
  setenv("BSORT_FORCE_THREAD_TIMING", "1", 1);
  Machine m(8, loggp::meiko_cs2(), MessageMode::kLong);
  unsetenv("BSORT_FORCE_THREAD_TIMING");
  EXPECT_TRUE(m.concurrent_timing());

  auto rep = m.run([&](Proc& p) {
    for (int step = 0; step < 5; ++step) {
      p.timed(Phase::kCompute, [] {
        volatile double sink = 0;
        double acc = 0;
        for (int i = 0; i < 50000; ++i) acc += static_cast<double>(i);
        sink = acc;
        (void)sink;
      });
      const auto partner = static_cast<std::uint64_t>(p.rank() ^ 1);
      p.exchange_with(partner, {static_cast<std::uint32_t>(step)});
    }
  });
  for (const auto& ph : rep.proc_phases) EXPECT_GT(ph.compute(), 0.0);
}

TEST(MachineStress, DefaultTimingIsConcurrentWhenClockIsFine) {
  // On multicore hosts with a fine-grained CLOCK_THREAD_CPUTIME_ID
  // (virtually all Linux kernels: 1ns resolution) the machine must pick
  // the lock-free path.  Single-threaded hosts deliberately fall back
  // to sharded timing (nothing to run concurrently); skip quietly when
  // the clock really is coarse.
  if (std::thread::hardware_concurrency() < 2) {
    Machine m(4, loggp::meiko_cs2(), MessageMode::kLong);
    EXPECT_FALSE(m.concurrent_timing());
    return;
  }
  timespec res{};
  if (clock_getres(CLOCK_THREAD_CPUTIME_ID, &res) != 0 ||
      res.tv_sec != 0 || res.tv_nsec > 1000) {
    GTEST_SKIP() << "host thread clock too coarse";
  }
  Machine m(4, loggp::meiko_cs2(), MessageMode::kLong);
  EXPECT_TRUE(m.concurrent_timing());
}

}  // namespace
}  // namespace bsort::simd
