#include "psort/psort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "loggp/params.hpp"
#include "test_helpers.hpp"
#include "util/random.hpp"

namespace bsort::psort {
namespace {

using testing::run_vector_spmd;
using util::KeyDistribution;

struct Case {
  std::size_t total_keys;
  int nprocs;
  KeyDistribution dist;
};

class PsortTest : public ::testing::TestWithParam<Case> {};

TEST_P(PsortTest, ParallelRadixSorts) {
  const auto& c = GetParam();
  const auto input = util::generate_keys(c.total_keys, c.dist, c.total_keys + 1);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  const auto out = run_vector_spmd(
      input, c.nprocs, simd::MessageMode::kLong,
      [](simd::Proc& p, std::vector<std::uint32_t>& keys) { parallel_radix_sort(p, keys); });
  EXPECT_EQ(out, expected);
}

TEST_P(PsortTest, ParallelSampleSorts) {
  const auto& c = GetParam();
  const auto input = util::generate_keys(c.total_keys, c.dist, c.total_keys + 2);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  const auto out = run_vector_spmd(
      input, c.nprocs, simd::MessageMode::kLong,
      [](simd::Proc& p, std::vector<std::uint32_t>& keys) {
        parallel_sample_sort(p, keys);
      });
  EXPECT_EQ(out, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PsortTest,
    ::testing::Values(Case{1u << 10, 4, KeyDistribution::kUniform31},
                      Case{1u << 12, 8, KeyDistribution::kUniform31},
                      Case{1u << 14, 16, KeyDistribution::kUniform31},
                      Case{1u << 12, 8, KeyDistribution::kLowEntropy},
                      Case{1u << 12, 8, KeyDistribution::kSorted},
                      Case{1u << 12, 8, KeyDistribution::kConstant},
                      Case{1u << 10, 1, KeyDistribution::kUniform31},
                      Case{1u << 10, 2, KeyDistribution::kReversed}));

TEST(SampleSort, LowEntropyStillCorrectThoughImbalanced) {
  // 16 distinct values across 8 processors: heavy imbalance but the
  // concatenated output must still be sorted.
  const auto input = util::generate_keys(1u << 12, KeyDistribution::kLowEntropy, 3);
  auto expected = input;
  std::sort(expected.begin(), expected.end());
  const auto out = run_vector_spmd(
      input, 8, simd::MessageMode::kLong,
      [](simd::Proc& p, std::vector<std::uint32_t>& keys) {
        parallel_sample_sort(p, keys);
      });
  EXPECT_EQ(out, expected);
}

TEST(RadixSort, PerPassVolumeIsBounded) {
  // Each of the 4 passes moves at most n keys per processor plus the
  // histogram traffic.
  const int P = 8;
  const std::size_t n = 1u << 10;
  const auto input = util::generate_keys(n * P, KeyDistribution::kUniform31, 4);
  std::vector<std::vector<std::uint32_t>> slices(P);
  for (int r = 0; r < P; ++r) {
    slices[static_cast<std::size_t>(r)].assign(
        input.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(r) * n),
        input.begin() + static_cast<std::ptrdiff_t>(static_cast<std::size_t>(r + 1) * n));
  }
  simd::Machine machine(P, loggp::meiko_cs2(), simd::MessageMode::kLong);
  auto rep = machine.run([&](simd::Proc& p) {
    parallel_radix_sort(p, slices[static_cast<std::size_t>(p.rank())]);
  });
  for (const auto& c : rep.proc_comm) {
    EXPECT_EQ(c.exchanges, 8u);  // histogram + keys per pass
    EXPECT_LE(c.elements_sent, 4 * (n + 256 * P));
  }
}

}  // namespace
}  // namespace bsort::psort
