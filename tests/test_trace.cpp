// The trace subsystem: ring-buffer semantics, JSONL export, the model
// validator (measured R/V/M/time vs. the Section 3.4 predictions) and
// the (L, o, g, G) fitter.  The validator tests include regressions
// against the two historical closed-form bugs: the divide-before-
// multiply truncation in cyclic_blocked_metrics at n < P, and
// smart_metrics returning the in-regime closed forms outside the
// lgP(lgP+1)/2 <= lg n regime.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "backend/backend.hpp"
#include "bitonic/remap_exec.hpp"
#include "bitonic/sorts.hpp"
#include "layout/bit_layout.hpp"
#include "loggp/choose.hpp"
#include "loggp/cost.hpp"
#include "loggp/params.hpp"
#include "schedule/formulas.hpp"
#include "simd/machine.hpp"
#include "test_helpers.hpp"
#include "trace/events.hpp"
#include "trace/fit.hpp"
#include "trace/jsonl.hpp"
#include "trace/validate.hpp"
#include "util/bits.hpp"
#include "util/random.hpp"

namespace bsort {
namespace {

/// Machines whose trace assertions are the exact analytic charges (or
/// whose fits must recover the machine's OWN parameters) pin the
/// simulated backend: under BSORT_BACKEND=native the charged times are
/// measured on the host and these expectations do not apply.
simd::Machine sim_machine(int nprocs, loggp::Params params, simd::MessageMode mode) {
  return simd::Machine(nprocs, params, mode, 1.0, backend::make_simulated());
}

using bitonic::remap_data;
using testing::run_blocked_spmd_on;

trace::ExchangeEvent make_event(std::uint32_t seq, std::uint64_t elements) {
  trace::ExchangeEvent e;
  e.seq = seq;
  e.elements = elements;
  return e;
}

TEST(VpTrace, OverwritesOldestWhenFull) {
  trace::VpTrace t;
  t.reset(4);
  EXPECT_EQ(t.capacity(), 4u);
  for (std::uint32_t i = 0; i < 6; ++i) t.push(make_event(i, 10 * i));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].seq, 2u + i);  // oldest-first, events 0 and 1 lost
    EXPECT_EQ(t[i].elements, 10u * (2 + i));
  }
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.capacity(), 4u);  // clear keeps the allocation
}

TEST(VpTrace, ZeroCapacityDropsEverything) {
  trace::VpTrace t;
  t.reset(0);
  t.push(make_event(0, 1));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 1u);
}

// One pairwise exchange per VP: rank r swaps `elems` keys with rank r^1.
void pairwise_program(simd::Proc& p, std::size_t elems) {
  const auto me = static_cast<std::uint64_t>(p.rank());
  const std::uint64_t peers[1] = {me ^ 1};
  const std::size_t sizes[1] = {elems};
  p.open_exchange(peers, sizes, peers);
  auto slot = p.send_slot(0);
  std::fill(slot.begin(), slot.end(), static_cast<std::uint32_t>(me));
  p.commit_exchange();
}

TEST(MachineTracing, RecordsOneEventPerExchange) {
  simd::Machine m = sim_machine(4, loggp::meiko_cs2(), simd::MessageMode::kLong);
  m.enable_tracing(16);
  m.run([](simd::Proc& p) {
    for (int i = 0; i < 3; ++i) pairwise_program(p, 8);
  });
  for (int r = 0; r < m.nprocs(); ++r) {
    const auto& t = m.vp_trace(r);
    ASSERT_EQ(t.size(), 3u);
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_EQ(t[i].seq, i);
      EXPECT_EQ(t[i].remap, -1);  // unannotated
      EXPECT_EQ(t[i].elements, 8u);
      EXPECT_EQ(t[i].messages, 1u);
      EXPECT_EQ(t[i].peers, 1u);
      EXPECT_DOUBLE_EQ(t[i].charged_us,
                       loggp::remap_time_long(m.params(), 8, 1, 4));
    }
  }
}

TEST(MachineTracing, RingsResetBetweenRunsAndOverflowIsReported) {
  simd::Machine m(2, loggp::meiko_cs2(), simd::MessageMode::kShort);
  m.enable_tracing(4);
  m.run([](simd::Proc& p) {
    for (int i = 0; i < 6; ++i) pairwise_program(p, 2);
  });
  EXPECT_EQ(m.vp_trace(0).size(), 4u);
  EXPECT_EQ(m.vp_trace(0).dropped(), 2u);
  // An overflowed ring means partial totals: the validator must refuse.
  const auto report = trace::validate_run(m, loggp::Strategy::kBlocked, 2);
  EXPECT_FALSE(report.all_ok());
  EXPECT_FALSE(report.vps[0].complete);

  // The next run starts from a clean ring (same capacity).
  m.run([](simd::Proc& p) { pairwise_program(p, 2); });
  EXPECT_EQ(m.vp_trace(0).size(), 1u);
  EXPECT_EQ(m.vp_trace(0).dropped(), 0u);
  EXPECT_EQ(m.vp_trace(0).capacity(), 4u);

  m.disable_tracing();
  EXPECT_FALSE(m.tracing());
}

TEST(MachineTracing, DisabledByDefault) {
  simd::Machine m(2, loggp::meiko_cs2(), simd::MessageMode::kLong);
  EXPECT_FALSE(m.tracing());
  // Runs fine with no rings armed; trace_remap is a no-op.
  m.run([](simd::Proc& p) {
    p.trace_remap(1, trace::LayoutTag::kBlocked, trace::LayoutTag::kBlocked);
    pairwise_program(p, 4);
  });
}

TEST(Jsonl, MetaLinePlusOneLinePerEvent) {
  simd::Machine m(2, loggp::meiko_cs2(), simd::MessageMode::kLong);
  m.enable_tracing(8);
  m.run([](simd::Proc& p) {
    for (int i = 0; i < 2; ++i) pairwise_program(p, 4);
  });
  std::ostringstream os;
  const auto written =
      trace::write_jsonl(os, m, {.label = "test \"x\"", .algorithm = "pairwise",
                                 .keys_per_proc = 4});
  EXPECT_EQ(written, 4u);  // 2 VPs x 2 events
  const std::string out = os.str();
  std::size_t lines = 0;
  for (const char c : out) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 5u);  // meta + 4 events
  EXPECT_NE(out.find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(out.find("\"label\":\"test \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"mode\":\"long\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"exchange\""), std::string::npos);
}

// ---- Validator: measured == predicted for the three strategies -------

class TraceValidationTest : public ::testing::TestWithParam<simd::MessageMode> {};

TEST_P(TraceValidationTest, BlockedMergeMatchesPrediction) {
  const int P = 8;
  const std::uint64_t n = 1u << 9;
  simd::Machine m = sim_machine(P, loggp::meiko_cs2(), GetParam());
  m.enable_tracing();
  auto keys = util::generate_keys(n * P, util::KeyDistribution::kUniform31, 1);
  run_blocked_spmd_on(m, keys, [](simd::Proc& p, std::span<std::uint32_t> s) {
    bitonic::blocked_merge_sort(p, s);
  });
  const auto report = trace::validate_run(m, loggp::Strategy::kBlocked, n);
  EXPECT_TRUE(report.all_ok()) << report.summary();
}

TEST_P(TraceValidationTest, CyclicBlockedMatchesPrediction) {
  const int P = 8;
  const std::uint64_t n = 1u << 9;
  simd::Machine m = sim_machine(P, loggp::meiko_cs2(), GetParam());
  m.enable_tracing();
  auto keys = util::generate_keys(n * P, util::KeyDistribution::kUniform31, 2);
  run_blocked_spmd_on(m, keys, [](simd::Proc& p, std::span<std::uint32_t> s) {
    bitonic::cyclic_blocked_sort(p, s);
  });
  const auto report = trace::validate_run(m, loggp::Strategy::kCyclicBlocked, n);
  EXPECT_TRUE(report.all_ok()) << report.summary();
}

TEST_P(TraceValidationTest, SmartMatchesPrediction) {
  const int P = 8;
  const std::uint64_t n = 1u << 9;  // lgP(lgP+1)/2 = 6 <= 9: usual regime
  simd::Machine m = sim_machine(P, loggp::meiko_cs2(), GetParam());
  m.enable_tracing();
  auto keys = util::generate_keys(n * P, util::KeyDistribution::kUniform31, 3);
  run_blocked_spmd_on(m, keys, [](simd::Proc& p, std::span<std::uint32_t> s) {
    bitonic::smart_sort(p, s);
  });
  const auto report = trace::validate_run(m, loggp::Strategy::kSmart, n);
  EXPECT_TRUE(report.all_ok()) << report.summary();
}

INSTANTIATE_TEST_SUITE_P(Modes, TraceValidationTest,
                         ::testing::Values(simd::MessageMode::kShort,
                                           simd::MessageMode::kLong),
                         [](const auto& info) {
                           return info.param == simd::MessageMode::kShort ? "Short"
                                                                          : "Long";
                         });

// Regression: the pre-fix cyclic_blocked_metrics truncated
// 2*n*(P-1)/P*lgP at n < P.  The sort itself is inadmissible there, but
// the remap sequence (blocked -> cyclic -> blocked, lgP times) is well
// defined — execute it raw and check the trace agrees with the fixed
// formula and disagrees with the old one.
TEST(TraceValidation, CatchesCyclicTruncationBugAtSmallN) {
  const std::uint64_t n = 2, P = 8, lgP = 3;
  simd::Machine m(static_cast<int>(P), loggp::meiko_cs2(), simd::MessageMode::kLong);
  m.enable_tracing();
  m.run([&](simd::Proc& p) {
    const auto blocked = layout::BitLayout::blocked(1, 3);
    const auto cyclic = layout::BitLayout::cyclic(1, 3);
    std::vector<std::uint32_t> keys(n, static_cast<std::uint32_t>(p.rank()));
    std::vector<std::uint32_t> scratch;
    bitonic::RemapWorkspace to_cyclic, to_blocked;
    for (std::uint64_t i = 0; i < lgP; ++i) {
      remap_data(p, blocked, cyclic, keys, scratch, to_cyclic);
      remap_data(p, cyclic, blocked, keys, scratch, to_blocked);
    }
  });

  const auto fixed = loggp::cyclic_blocked_metrics(n, P);
  // The formula this replaced: divide truncates before the * lgP.
  const std::uint64_t old_elements = 2 * n * (P - 1) / P * lgP;  // == 9
  ASSERT_EQ(old_elements, 9u);
  EXPECT_EQ(fixed.elements, 12u);  // 2 lgP remaps x n: worst case keeps nothing

  // Below n = P the per-processor traffic is not uniform: the few ranks
  // the blocked<->cyclic address shift maps to themselves (here 0 and
  // P-1) retain one key per remap, everyone else sends everything.  The
  // metric is the critical path: the busiest processor must match it
  // exactly, nobody may exceed it — and the old truncated value (9)
  // matches NO processor's actual traffic.
  std::uint64_t max_elements = 0, max_messages = 0;
  for (int r = 0; r < m.nprocs(); ++r) {
    const auto meas = trace::measure(m.vp_trace(r));
    EXPECT_EQ(meas.remaps, fixed.remaps);
    EXPECT_LE(meas.elements, fixed.elements);
    EXPECT_LE(meas.messages, fixed.messages);
    EXPECT_NE(meas.elements, old_elements);  // the validator catches the bug
    max_elements = std::max(max_elements, meas.elements);
    max_messages = std::max(max_messages, meas.messages);
  }
  EXPECT_EQ(max_elements, fixed.elements);
  EXPECT_EQ(max_messages, fixed.messages);
}

// Regression: outside the usual regime (lgP(lgP+1)/2 > lg n) the
// pre-fix smart_metrics kept returning the in-regime closed forms in
// Release (the guard was assert-only).  n = 8, P = 8 is out of regime;
// the measured trace matches the general-shape schedule formulas and
// refutes the closed forms.
TEST(TraceValidation, CatchesSmartClosedFormOutOfRegime) {
  const std::uint64_t n = 8, P = 8, lgP = 3;
  simd::Machine m = sim_machine(static_cast<int>(P), loggp::meiko_cs2(),
                                simd::MessageMode::kLong);
  m.enable_tracing();
  auto keys = util::generate_keys(n * P, util::KeyDistribution::kUniform31, 4);
  run_blocked_spmd_on(m, keys, [](simd::Proc& p, std::span<std::uint32_t> s) {
    bitonic::smart_sort(p, s);
  });

  const std::uint64_t old_remaps = lgP + 1;  // in-regime closed form R
  const auto fixed = loggp::smart_metrics(n, P);
  EXPECT_EQ(fixed.remaps, schedule::smart_remap_count(3, 3));
  EXPECT_NE(fixed.remaps, old_remaps);

  const auto report = trace::validate_run(m, loggp::Strategy::kSmart, n);
  EXPECT_TRUE(report.all_ok()) << report.summary();
  for (int r = 0; r < m.nprocs(); ++r) {
    EXPECT_NE(trace::measure(m.vp_trace(r)).remaps, old_remaps);
  }
}

// ---- Fitter ----------------------------------------------------------

TEST(Fit, RecoversParametersFromLongModeCalibration) {
  const auto truth = loggp::meiko_cs2();
  simd::Machine m = sim_machine(8, truth, simd::MessageMode::kLong);
  const auto fit = trace::calibrate(m, truth.o);
  EXPECT_FALSE(m.tracing());  // restored
  EXPECT_TRUE(fit.long_mode);
  EXPECT_GE(fit.events, 3u);
  // The machine charges the exact formulas, so recovery is essentially
  // exact — far inside the 5% acceptance band.
  EXPECT_NEAR(fit.params.L, truth.L, 0.05 * truth.L);
  EXPECT_NEAR(fit.params.g, truth.g, 0.05 * truth.g);
  EXPECT_NEAR(fit.params.G, truth.G, 0.05 * truth.G);
  EXPECT_DOUBLE_EQ(fit.params.o, truth.o);
  EXPECT_LT(fit.max_rel_residual, 1e-9);
}

TEST(Fit, RecoversParametersFromShortModeCalibration) {
  const auto truth = loggp::meiko_cs2();
  simd::Machine m = sim_machine(4, truth, simd::MessageMode::kShort);
  const auto fit = trace::calibrate(m, truth.o);
  EXPECT_FALSE(fit.long_mode);
  EXPECT_NEAR(fit.params.L, truth.L, 0.05 * truth.L);
  EXPECT_NEAR(fit.params.g, truth.g, 0.05 * truth.g);
  EXPECT_DOUBLE_EQ(fit.params.G, 0.0);  // unexercised by short messages
}

TEST(Fit, FittedParametersReproduceStrategyChoice) {
  const auto truth = loggp::modern_cluster();
  simd::Machine m = sim_machine(8, truth, simd::MessageMode::kLong);
  const auto fit = trace::calibrate(m, truth.o);
  for (const std::uint64_t n : {std::uint64_t{64}, std::uint64_t{1} << 12,
                                std::uint64_t{1} << 18}) {
    for (const std::uint64_t P : {std::uint64_t{8}, std::uint64_t{64}}) {
      EXPECT_EQ(loggp::choose_strategy(fit.params, n, P, true),
                loggp::choose_strategy(truth, n, P, true))
          << "n=" << n << " P=" << P;
    }
  }
}

TEST(Fit, ThrowsWithoutTracingOrEnoughRows) {
  simd::Machine m(2, loggp::meiko_cs2(), simd::MessageMode::kLong);
  EXPECT_THROW((void)trace::fit_params(m, 1.0), std::invalid_argument);
  m.enable_tracing(8);
  EXPECT_THROW((void)trace::fit_params(m, 1.0), std::invalid_argument);  // no rows
  // Long mode needs two distinct message counts: P = 2 pairwise-only
  // traces leave the g column identically zero.
  m.run([](simd::Proc& p) {
    for (const std::size_t sz : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
      pairwise_program(p, sz);
    }
  });
  EXPECT_THROW((void)trace::fit_params(m, 1.0), std::invalid_argument);
  EXPECT_THROW((void)trace::calibrate(m, 1.0), std::invalid_argument);  // P < 4
}

}  // namespace
}  // namespace bsort
