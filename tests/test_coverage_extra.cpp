// Final coverage sweeps: short-message mode for every algorithm,
// alternative machine parameter sets, and miscellaneous API surface.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/parallel_sort.hpp"
#include "loggp/choose.hpp"
#include "simd/machine.hpp"
#include "util/random.hpp"

namespace bsort {
namespace {

class ShortModeSweep : public ::testing::TestWithParam<api::Algorithm> {};

TEST_P(ShortModeSweep, SortsWithShortMessages) {
  api::Config cfg;
  cfg.nprocs = 4;
  cfg.mode = simd::MessageMode::kShort;
  cfg.algorithm = GetParam();
  auto keys = util::generate_keys(1u << 10, util::KeyDistribution::kUniform31, 77);
  auto want = keys;
  std::sort(want.begin(), want.end());
  ASSERT_TRUE(api::config_valid(cfg, keys.size()));
  const auto outcome = api::parallel_sort(keys, cfg);
  EXPECT_TRUE(outcome.sorted);
  EXPECT_EQ(keys, want);
  // Short mode: one message per key.
  EXPECT_EQ(outcome.report.total_comm().messages_sent,
            outcome.report.total_comm().elements_sent);
}

INSTANTIATE_TEST_SUITE_P(
    All, ShortModeSweep,
    ::testing::Values(api::Algorithm::kSmartBitonic,
                      api::Algorithm::kCyclicBlockedBitonic,
                      api::Algorithm::kBlockedMergeBitonic,
                      api::Algorithm::kNaiveBitonic, api::Algorithm::kParallelRadix,
                      api::Algorithm::kSampleSort, api::Algorithm::kColumnSort),
    [](const ::testing::TestParamInfo<api::Algorithm>& info) {
      std::string name(api::algorithm_name(info.param));
      for (auto& c : name) {
        if (c == '/' || c == '-') c = '_';
      }
      return name;
    });

TEST(ModernCluster, LongMessagesStillFavorSmartAtScale) {
  // On a modern-fabric parameter set the chooser conclusions of
  // Section 3.4.3 still hold qualitatively at moderate/large P.
  const auto p = loggp::modern_cluster();
  EXPECT_EQ(loggp::choose_strategy(p, 1u << 18, 64, true), loggp::Strategy::kSmart);
  EXPECT_EQ(loggp::choose_strategy(p, 1u << 18, 64, false), loggp::Strategy::kSmart);
}

TEST(ModernCluster, ParamsSane) {
  const auto p = loggp::modern_cluster();
  EXPECT_LT(p.G_per_element(4), p.g);
  EXPECT_LT(p.o, loggp::meiko_cs2().o);
}

TEST(PhaseBreakdown, TotalsSumComponents) {
  simd::PhaseBreakdown ph;
  ph.us[0] = 1;
  ph.us[1] = 2;
  ph.us[2] = 3;
  ph.us[3] = 4;
  EXPECT_DOUBLE_EQ(ph.total(), 10.0);
  EXPECT_DOUBLE_EQ(ph.compute(), 1.0);
  EXPECT_DOUBLE_EQ(ph.pack(), 2.0);
  EXPECT_DOUBLE_EQ(ph.transfer(), 3.0);
  EXPECT_DOUBLE_EQ(ph.unpack(), 4.0);
}

TEST(ApiSmartOptions, PropagateThroughFacade) {
  api::Config cfg;
  cfg.nprocs = 8;
  cfg.smart.strategy = schedule::ShiftStrategy::kTail;
  cfg.smart.compute = bitonic::SmartCompute::kFused;
  auto keys = util::generate_keys(1u << 12, util::KeyDistribution::kUniform31, 5);
  auto want = keys;
  std::sort(want.begin(), want.end());
  const auto outcome = api::parallel_sort(keys, cfg);
  EXPECT_TRUE(outcome.sorted);
  EXPECT_EQ(keys, want);
}

TEST(ApiReport, CommCountsMatchAcrossModes) {
  // Short and long mode move identical element volumes.
  const auto input = util::generate_keys(1u << 12, util::KeyDistribution::kUniform31, 6);
  api::Config cfg;
  cfg.nprocs = 8;
  auto k1 = input;
  cfg.mode = simd::MessageMode::kLong;
  const auto r1 = api::parallel_sort(k1, cfg);
  auto k2 = input;
  cfg.mode = simd::MessageMode::kShort;
  const auto r2 = api::parallel_sort(k2, cfg);
  EXPECT_EQ(r1.report.total_comm().elements_sent, r2.report.total_comm().elements_sent);
  EXPECT_LT(r1.report.total_comm().messages_sent, r2.report.total_comm().messages_sent);
}

}  // namespace
}  // namespace bsort
