#include "net/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/sequence.hpp"
#include "util/bits.hpp"
#include "util/random.hpp"

namespace bsort::net {
namespace {

TEST(Network, KeepsMinRule) {
  // Final stage (bit `stage` of every row is 0): the low partner of each
  // pair keeps the min.
  EXPECT_TRUE(keeps_min(0b000, /*stage=*/3, /*step=*/1));
  EXPECT_FALSE(keeps_min(0b001, 3, 1));
  // Stage 1 alternates with bit 1 of the row.
  EXPECT_TRUE(keeps_min(0b00, 1, 1));   // row 0: ascending merge
  EXPECT_FALSE(keeps_min(0b01, 1, 1));  // row 1: ascending, has compare bit 1
  EXPECT_FALSE(keeps_min(0b10, 1, 1));  // row 2: descending merge
  EXPECT_TRUE(keeps_min(0b11, 1, 1));
}

TEST(Network, SortsExhaustiveSmall) {
  // All 2^8 bit patterns for N=8.
  for (unsigned pattern = 0; pattern < 256; ++pattern) {
    std::vector<std::uint32_t> data(8);
    for (int i = 0; i < 8; ++i) data[static_cast<std::size_t>(i)] = (pattern >> i) & 1u;
    reference_sort(data);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end())) << "pattern " << pattern;
  }
}

TEST(Network, SortsRandomSizes) {
  for (const std::size_t n : {1u, 2u, 4u, 16u, 64u, 256u, 1024u}) {
    auto data = util::generate_keys(n, util::KeyDistribution::kUniform31, n);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    reference_sort(data);
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST(Network, SortsDuplicates) {
  auto data = util::generate_keys(256, util::KeyDistribution::kLowEntropy, 3);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  reference_sort(data);
  EXPECT_EQ(data, expected);
}

// Lemma 6: the input of stage k consists of 2^(lgN-k+1) alternating
// sorted sequences of length 2^(k-1).
TEST(Network, Lemma6StageInputStructure) {
  const std::size_t N = 256;
  auto data = util::generate_keys(N, util::KeyDistribution::kUniform31, 11);
  const int stages = util::ilog2(N);
  for (int stage = 1; stage <= stages; ++stage) {
    // Check BEFORE executing the stage.
    const std::size_t run = std::size_t{1} << (stage - 1);
    for (std::size_t base = 0; base < N; base += run) {
      const bool asc = (base / run) % 2 == 0;
      for (std::size_t i = base + 1; i < base + run; ++i) {
        if (asc) {
          EXPECT_LE(data[i - 1], data[i]) << "stage " << stage << " base " << base;
        } else {
          EXPECT_GE(data[i - 1], data[i]) << "stage " << stage << " base " << base;
        }
      }
    }
    reference_stage(std::span<std::uint32_t>(data.data(), N), stage);
  }
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

// Lemma 7: at column s of a stage the data consists of 2^(lgN-s) bitonic
// sequences of length 2^s.
TEST(Network, Lemma7ColumnStructure) {
  const std::size_t N = 256;
  auto data = util::generate_keys(N, util::KeyDistribution::kUniform31, 12);
  const int stages = util::ilog2(N);
  for (int stage = 1; stage <= stages; ++stage) {
    for (int step = stage; step >= 1; --step) {
      // Before executing step `step` we are at column `step`; blocks of
      // size 2^step are bitonic.
      const std::size_t block = std::size_t{1} << step;
      for (std::size_t base = 0; base < N; base += block) {
        EXPECT_TRUE(
            is_bitonic(std::span<const std::uint32_t>(data.data() + base, block)))
            << "stage " << stage << " step " << step << " base " << base;
      }
      reference_step(std::span<std::uint32_t>(data.data(), N), stage, step);
    }
  }
}

TEST(Network, StageEqualsStepSequence) {
  const std::size_t N = 64;
  auto a = util::generate_keys(N, util::KeyDistribution::kUniform31, 5);
  auto b = a;
  for (int stage = 1; stage <= util::ilog2(N); ++stage) {
    reference_stage(std::span<std::uint32_t>(a.data(), N), stage);
    for (int step = stage; step >= 1; --step) {
      reference_step(std::span<std::uint32_t>(b.data(), N), stage, step);
    }
    EXPECT_EQ(a, b) << "stage " << stage;
  }
}

}  // namespace
}  // namespace bsort::net
