#include "schedule/formulas.hpp"

#include <gtest/gtest.h>

#include "layout/remap.hpp"
#include "schedule/smart_schedule.hpp"
#include "util/bits.hpp"

namespace bsort::schedule {
namespace {

TEST(Formulas, RemainingSteps) {
  EXPECT_EQ(remaining_steps(4, 4), 2);   // 10 mod 4
  EXPECT_EQ(remaining_steps(10, 4), 0);  // 10 mod 10
  EXPECT_EQ(remaining_steps(15, 5), 0);  // 15 mod 15
  EXPECT_EQ(remaining_steps(16, 5), 15);
}

TEST(Formulas, AkRecurrence) {
  // a_{k+1} = (a_k + k) mod lg n, a_1 = 0.
  for (int log_n = 1; log_n <= 12; ++log_n) {
    int a = 0;
    for (int k = 1; k <= 8; ++k) {
      EXPECT_EQ(a_k(log_n, k), a) << "log_n=" << log_n << " k=" << k;
      a = (a + k) % log_n;
    }
  }
}

// Lemma 3, validated against real layouts: the predicted N_BitsChanged of
// every remap in a schedule equals the measured bit change between the
// actual consecutive layouts.
TEST(Formulas, Lemma3MatchesMeasuredBitsChanged) {
  for (int log_n = 1; log_n <= 9; ++log_n) {
    for (int log_p = 1; log_p <= 6; ++log_p) {
      const auto sched = make_smart_schedule(log_n, log_p);
      auto prev = layout::BitLayout::blocked(log_n, log_p);
      for (const auto& phase : sched.remaps) {
        const int measured = layout::bits_changed(prev, phase.layout);
        const int predicted =
            predicted_bits_changed(log_n, log_p, phase.params.k, phase.params.s);
        EXPECT_EQ(measured, predicted)
            << "log_n=" << log_n << " log_p=" << log_p << " k=" << phase.params.k
            << " s=" << phase.params.s;
        prev = phase.layout;
        if (phase.params.kind == layout::SmartKind::kCrossing) {
          prev = layout::BitLayout::smart_phase2(log_n, log_p, phase.params);
        }
      }
    }
  }
}

// Section 3.2.1: the closed-form volume matches the volume measured from
// the generated schedule's layouts.
TEST(Formulas, SmartVolumeMatchesSchedule) {
  for (int log_n = 1; log_n <= 9; ++log_n) {
    for (int log_p = 1; log_p <= 6; ++log_p) {
      const auto sched = make_smart_schedule(log_n, log_p);
      EXPECT_EQ(schedule_volume_per_proc(sched), smart_volume_per_proc(log_n, log_p))
          << "log_n=" << log_n << " log_p=" << log_p;
    }
  }
}

TEST(Formulas, UsualRegimeVolumeIsNLgP) {
  // For lgP(lgP+1)/2 <= lg n, V_smart = n lg P (Section 3.2.1).
  for (int log_p = 1; log_p <= 6; ++log_p) {
    const int log_n = log_p * (log_p + 1) / 2 + 1;
    const std::uint64_t n = std::uint64_t{1} << log_n;
    EXPECT_EQ(smart_volume_per_proc(log_n, log_p),
              n * static_cast<std::uint64_t>(log_p));
  }
}

TEST(Formulas, SmartBeatsCyclicBlockedVolume) {
  // V_cyclic-blocked / V_smart ~= 2(1 - 1/P).
  for (int log_p = 2; log_p <= 6; ++log_p) {
    const int log_n = log_p * (log_p + 1) / 2 + 2;
    const auto vs = smart_volume_per_proc(log_n, log_p);
    const auto vc = cyclic_blocked_volume_per_proc(log_n, log_p);
    const double P = static_cast<double>(std::uint64_t{1} << log_p);
    EXPECT_NEAR(static_cast<double>(vc) / static_cast<double>(vs), 2.0 * (1.0 - 1.0 / P),
                1e-9);
  }
}

// Lemma 5: V_tail <= V_head <= V_middle1; V_tail <= V_middle2 (for
// n >= P^2); and V_tail == V_head in the usual regime.
TEST(Formulas, Lemma5ShiftInequalities) {
  for (int log_p = 2; log_p <= 5; ++log_p) {
    for (int log_n = 2 * log_p; log_n <= 2 * log_p + 6; ++log_n) {
      const auto v_head = schedule_volume_per_proc(make_smart_schedule(log_n, log_p));
      const auto v_tail = schedule_volume_per_proc(
          make_smart_schedule(log_n, log_p, ShiftStrategy::kTail));
      EXPECT_LE(v_tail, v_head) << "log_n=" << log_n << " log_p=" << log_p;
      const int rem = remaining_steps(log_n, log_p);
      if (rem > 1) {
        // MiddleRemap1: split the remainder across first and last chunks.
        const auto v_m1 = schedule_volume_per_proc(
            make_smart_schedule(log_n, log_p, ShiftStrategy::kHead, rem / 2));
        EXPECT_GT(v_m1, v_head) << "log_n=" << log_n << " log_p=" << log_p;
      }
      if (rem > 0 && rem < log_n - 1) {
        // MiddleRemap2: first chunk between rem and lg n.
        const auto v_m2 = schedule_volume_per_proc(
            make_smart_schedule(log_n, log_p, ShiftStrategy::kHead, rem + 1));
        EXPECT_GE(v_m2, v_tail) << "log_n=" << log_n << " log_p=" << log_p;
      }
      if (log_p * (log_p + 1) / 2 <= log_n) {
        EXPECT_EQ(v_tail, v_head);
      }
    }
  }
}

TEST(Formulas, BlockedVolume) {
  EXPECT_EQ(blocked_volume_per_proc(4, 3), 16u * 6u);
}

}  // namespace
}  // namespace bsort::schedule
