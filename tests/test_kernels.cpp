// Differential property suite for the vectorized kernel layer
// (src/kernel/): every compiled variant (scalar / sse / avx2) must agree
// with an independent reference implementation on randomized sizes,
// alignments, directions and patterns, and the integrated paths (radix
// sort, network steps, full sorts on the simulated machine) must produce
// identical results whichever variant is forced.  Also covers the
// dispatch rules themselves (BSORT_KERNEL resolution).
//
// These tests run in the ASan configuration as part of the normal ctest
// suite (see .github/workflows/ci.yml), which is what checks the SIMD
// tails and unaligned spans for out-of-bounds access.
#include "kernel/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "bitonic/sorts.hpp"
#include "layout/bit_layout.hpp"
#include "localsort/compare_exchange.hpp"
#include "localsort/radix_sort.hpp"
#include "net/network.hpp"
#include "test_helpers.hpp"
#include "util/bits.hpp"
#include "util/random.hpp"

namespace bsort::kernel {
namespace {

/// Sizes exercising empty, tiny, sub-vector-width, exact-width, and
/// odd/unaligned-tail lengths.
constexpr std::size_t kSizes[] = {0, 1, 2, 3, 4, 7, 8, 9, 15, 16, 17,
                                  31, 33, 63, 64, 65, 127, 255, 1000};

std::vector<const Kernels*> runnable_variants() {
  std::vector<const Kernels*> out;
  for (const Kernels* k : variants()) {
    if (supported(*k)) out.push_back(k);
  }
  return out;
}

/// Restores automatic dispatch even if a test fails mid-way.
struct ActiveGuard {
  ~ActiveGuard() { set_active_for_testing(nullptr); }
};

TEST(KernelDispatch, ScalarAlwaysPresent) {
  ASSERT_NE(by_name("scalar"), nullptr);
  EXPECT_TRUE(supported(*by_name("scalar")));
  EXPECT_FALSE(runnable_variants().empty());
}

TEST(KernelDispatch, ResolveHonorsOverride) {
  for (const Kernels* k : runnable_variants()) {
    EXPECT_STREQ(resolve(k->name).name, k->name);
  }
}

TEST(KernelDispatch, ResolveFallsBackOnBogusOverride) {
  const Kernels& autod = resolve(nullptr);
  EXPECT_TRUE(supported(autod));
  EXPECT_STREQ(resolve("no-such-kernel").name, autod.name);
  EXPECT_STREQ(resolve("").name, autod.name);
}

TEST(KernelDispatch, AutoPicksStrongestSupported) {
  const Kernels& autod = resolve(nullptr);
  // Auto must never pick scalar while a SIMD variant is supported.
  for (const Kernels* k : runnable_variants()) {
    if (std::string_view(k->name) != "scalar") {
      EXPECT_STRNE(autod.name, "scalar");
    }
  }
}

TEST(KernelDispatch, Avx512OverrideFallsBackWhereUnsupported) {
  // BSORT_KERNEL=avx512 must resolve to the avx512 table exactly when
  // the host can run it, and fall back to auto-detection (not crash,
  // not latch an unrunnable table) everywhere else — the case an
  // AVX2-only CI runner exercises.
  const Kernels* k = by_name("avx512");
#ifdef __x86_64__
  ASSERT_NE(k, nullptr) << "avx512 variant must be compiled on x86-64";
#endif
  const Kernels& resolved = resolve("avx512");
  if (k != nullptr && supported(*k)) {
    EXPECT_STREQ(resolved.name, "avx512");
  } else {
    EXPECT_STREQ(resolved.name, resolve(nullptr).name);
    EXPECT_TRUE(supported(resolved));
  }
}

// ---- per-kernel differential checks ---------------------------------

TEST(KernelDifferential, CmpexBlocks) {
  for (const Kernels* k : runnable_variants()) {
    for (const std::size_t n : kSizes) {
      for (const bool asc : {true, false}) {
        for (const std::size_t offset : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
          auto a = util::generate_keys(n + offset, util::KeyDistribution::kUniform31,
                                       n * 7 + offset);
          auto b = util::generate_keys(n + offset, util::KeyDistribution::kUniform31,
                                       n * 13 + offset + 1);
          auto ea = a, eb = b;
          for (std::size_t i = offset; i < n + offset; ++i) {
            const std::uint32_t lo = std::min(ea[i], eb[i]);
            const std::uint32_t hi = std::max(ea[i], eb[i]);
            ea[i] = asc ? lo : hi;
            eb[i] = asc ? hi : lo;
          }
          k->cmpex_blocks(a.data() + offset, b.data() + offset, n, asc);
          EXPECT_EQ(a, ea) << k->name << " n=" << n << " asc=" << asc
                           << " off=" << offset;
          EXPECT_EQ(b, eb) << k->name << " n=" << n << " asc=" << asc
                           << " off=" << offset;
        }
      }
    }
  }
}

TEST(KernelDifferential, KeepMinMax) {
  for (const Kernels* k : runnable_variants()) {
    for (const std::size_t n : kSizes) {
      for (const std::size_t offset : {std::size_t{0}, std::size_t{2}}) {
        auto d = util::generate_keys(n + offset, util::KeyDistribution::kUniform31, n + 2);
        const auto s =
            util::generate_keys(n + offset, util::KeyDistribution::kUniform31, n + 5);
        auto dmin = d, dmax = d;
        for (std::size_t i = offset; i < n + offset; ++i) {
          dmin[i] = std::min(d[i], s[i]);
          dmax[i] = std::max(d[i], s[i]);
        }
        auto got = d;
        k->keep_min(got.data() + offset, s.data() + offset, n);
        EXPECT_EQ(got, dmin) << k->name << " n=" << n;
        got = d;
        k->keep_max(got.data() + offset, s.data() + offset, n);
        EXPECT_EQ(got, dmax) << k->name << " n=" << n;
      }
    }
  }
}

TEST(KernelDifferential, Hist4x8AndHist2x16) {
  for (const Kernels* k : runnable_variants()) {
    for (const std::size_t n : kSizes) {
      for (const std::uint32_t xm : {0u, 0xFFFFFFFFu}) {
        const auto keys =
            util::generate_keys(n, util::KeyDistribution::kUniform31, n + 11);
        std::array<std::array<std::size_t, 256>, 4> expect8{};
        std::vector<std::uint32_t> elo(1 << 16, 0), ehi(1 << 16, 0);
        for (const std::uint32_t key : keys) {
          const std::uint32_t x = key ^ xm;
          ++expect8[0][x & 0xFFu];
          ++expect8[1][(x >> 8) & 0xFFu];
          ++expect8[2][(x >> 16) & 0xFFu];
          ++expect8[3][x >> 24];
          ++elo[x & 0xFFFFu];
          ++ehi[x >> 16];
        }
        std::array<std::array<std::size_t, 256>, 4> got8{};
        k->hist4x8(keys.data(), n, xm,
                   reinterpret_cast<std::size_t(*)[256]>(got8.data()));
        EXPECT_EQ(got8, expect8) << k->name << " n=" << n << " xm=" << xm;
        std::vector<std::uint32_t> glo(1 << 16, 0), ghi(1 << 16, 0);
        k->hist2x16(keys.data(), n, xm, glo.data(), ghi.data());
        EXPECT_EQ(glo, elo) << k->name << " n=" << n << " xm=" << xm;
        EXPECT_EQ(ghi, ehi) << k->name << " n=" << n << " xm=" << xm;
      }
    }
  }
}

TEST(KernelDifferential, GatherScatterIdx) {
  util::SplitMix64 rng(99);
  for (const Kernels* k : runnable_variants()) {
    for (const std::size_t n : kSizes) {
      if (n == 0) continue;
      // Index table: a random permutation of [0, n) embedded below a
      // disjoint pattern bit, as mask plans produce.
      std::vector<std::uint32_t> idx(n);
      std::iota(idx.begin(), idx.end(), 0u);
      for (std::size_t i = n; i > 1; --i) {
        std::swap(idx[i - 1], idx[rng.next() % i]);
      }
      std::uint32_t table_span = 1;
      while (table_span < n) table_span <<= 1;
      for (const std::uint32_t pat : {0u, table_span, 3 * table_span}) {
        const auto src = util::generate_keys(4 * table_span,
                                             util::KeyDistribution::kUniform31, n + 17);
        std::vector<std::uint32_t> expect(n);
        for (std::size_t j = 0; j < n; ++j) expect[j] = src[idx[j] | pat];
        std::vector<std::uint32_t> got(n, 0);
        k->gather_idx(got.data(), src.data(), idx.data(), pat, n);
        EXPECT_EQ(got, expect) << k->name << " n=" << n << " pat=" << pat;

        const auto payload =
            util::generate_keys(n, util::KeyDistribution::kUniform31, n + 23);
        std::vector<std::uint32_t> edst(4 * table_span, 0), gdst(4 * table_span, 0);
        for (std::size_t j = 0; j < n; ++j) edst[idx[j] | pat] = payload[j];
        k->scatter_idx(gdst.data(), idx.data(), pat, payload.data(), n);
        EXPECT_EQ(gdst, edst) << k->name << " n=" << n << " pat=" << pat;
      }
    }
  }
}

// Independent reference for cmpex_multistep: one column at a time, one
// pair at a time, direction recomputed per element from first
// principles.
void reference_multistep(std::vector<std::uint32_t>& data, const int* pos,
                         int count, int dir_pos, bool const_ascending) {
  for (int i = 0; i < count; ++i) {
    const std::size_t half = std::size_t{1} << pos[i];
    for (std::size_t l = 0; l < data.size(); ++l) {
      if ((l & half) != 0) continue;
      const bool asc =
          dir_pos >= 0 ? ((l >> dir_pos) & 1) == 0 : const_ascending;
      const std::size_t lp = l | half;
      if ((data[l] > data[lp]) == asc) std::swap(data[l], data[lp]);
    }
  }
}

TEST(KernelDifferential, CmpexMultistep) {
  util::SplitMix64 rng(4242);
  // Power-of-two sizes below, at, and above the 256-element fused tile,
  // including sizes below the 8/16-lane SIMD widths (scalar fallback
  // paths) and sizes where n is not a multiple of the max 256 tile.
  for (const std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                              std::size_t{16}, std::size_t{32}, std::size_t{64},
                              std::size_t{128}, std::size_t{256}, std::size_t{512},
                              std::size_t{8192}}) {
    const int log_n = static_cast<int>(util::ilog2(n));
    const int max_pos = std::min(log_n - 1, kMaxFusedPos);
    for (int round = 0; round < 12; ++round) {
      // Random column sequence: descending runs (the schedule shape),
      // plus fully shuffled orders to pin the in-order contract.
      const int count = 1 + static_cast<int>(rng.next() % static_cast<std::uint64_t>(
                                                 max_pos + 1));
      std::vector<int> pos(static_cast<std::size_t>(count));
      if (round % 2 == 0) {
        for (int i = 0; i < count; ++i) pos[static_cast<std::size_t>(i)] = max_pos - i >= 0 ? max_pos - i : 0;
      } else {
        for (int i = 0; i < count; ++i) {
          pos[static_cast<std::size_t>(i)] = static_cast<int>(
              rng.next() % static_cast<std::uint64_t>(max_pos + 1));
        }
      }
      // Direction: constant ascending, constant descending, and a
      // direction bit at every position not used as a compare bit —
      // below, inside, and above the tile.
      std::vector<std::pair<int, bool>> dirs = {{-1, true}, {-1, false}};
      for (int d = 0; d < log_n; ++d) {
        if (std::find(pos.begin(), pos.end(), d) == pos.end()) {
          dirs.emplace_back(d, true);
        }
      }
      for (const auto& [dir_pos, asc] : dirs) {
        const auto input = util::generate_keys(
            n, util::KeyDistribution::kUniform31,
            n * 31 + static_cast<std::size_t>(round) * 7 + 1);
        auto expect = input;
        reference_multistep(expect, pos.data(), count, dir_pos, asc);
        for (const Kernels* k : runnable_variants()) {
          auto got = input;
          k->cmpex_multistep(got.data(), n, pos.data(), count, dir_pos, asc);
          ASSERT_EQ(got, expect)
              << k->name << " n=" << n << " count=" << count
              << " dir_pos=" << dir_pos << " asc=" << asc << " round=" << round;
        }
      }
    }
  }
}

TEST(KernelIntegrated, RadixSortEveryVariant) {
  ActiveGuard guard;
  for (const Kernels* k : runnable_variants()) {
    set_active_for_testing(k);
    std::vector<std::uint32_t> scratch;
    // Include sizes around 1 << 16 (scatter-prefetch regime changes).
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{255}, std::size_t{4096},
          std::size_t{65535}, std::size_t{65536}, std::size_t{100000}}) {
      auto keys = util::generate_keys(n, util::KeyDistribution::kUniform31, n + 3);
      auto expect = keys;
      std::sort(expect.begin(), expect.end());
      localsort::radix_sort(std::span<std::uint32_t>(keys.data(), n), scratch);
      EXPECT_EQ(keys, expect) << k->name << " asc n=" << n;

      auto desc = util::generate_keys(n, util::KeyDistribution::kUniform31, n + 7);
      auto edesc = desc;
      std::sort(edesc.begin(), edesc.end(), std::greater<>());
      localsort::radix_sort_descending(std::span<std::uint32_t>(desc.data(), n), scratch);
      EXPECT_EQ(desc, edesc) << k->name << " desc n=" << n;
    }
    // Full 32-bit range (no degenerate top digit) and constant keys
    // (every pass degenerate).
    std::vector<std::uint32_t> wide(70000);
    util::SplitMix64 rng(5);
    for (auto& v : wide) v = static_cast<std::uint32_t>(rng.next());
    auto ewide = wide;
    std::sort(ewide.begin(), ewide.end());
    localsort::radix_sort(std::span<std::uint32_t>(wide.data(), wide.size()), scratch);
    EXPECT_EQ(wide, ewide) << k->name;
    std::vector<std::uint32_t> flat(70000, 42u);
    localsort::radix_sort(std::span<std::uint32_t>(flat.data(), flat.size()), scratch);
    EXPECT_TRUE(std::all_of(flat.begin(), flat.end(), [](auto v) { return v == 42u; }));
  }
}

TEST(KernelIntegrated, NetworkStepsEveryVariant) {
  ActiveGuard guard;
  // Every (stage, step) with a local compare bit on blocked/cyclic
  // layouts must match the reference full-array step — this walks all
  // three direction-hoisting cases of the block-oriented rewrite.
  for (const Kernels* k : runnable_variants()) {
    set_active_for_testing(k);
    for (const auto& lay :
         {layout::BitLayout::blocked(4, 2), layout::BitLayout::cyclic(4, 2)}) {
      const std::uint64_t N = std::uint64_t{1} << lay.log_total();
      auto full = util::generate_keys(N, util::KeyDistribution::kUniform31, N + 29);
      for (int stage = 1; stage <= lay.log_total(); ++stage) {
        for (int step = stage; step >= 1; --step) {
          if (!lay.is_local_bit(step - 1)) {
            net::reference_step(std::span<std::uint32_t>(full.data(), N), stage, step);
            continue;
          }
          std::vector<std::vector<std::uint32_t>> views(
              lay.proc_count(), std::vector<std::uint32_t>(lay.local_size()));
          for (std::uint64_t abs = 0; abs < N; ++abs) {
            views[lay.proc_of(abs)][lay.local_of(abs)] = full[abs];
          }
          for (std::uint64_t pr = 0; pr < views.size(); ++pr) {
            localsort::local_network_step(
                lay, pr, std::span<std::uint32_t>(views[pr].data(), views[pr].size()),
                stage, step);
          }
          net::reference_step(std::span<std::uint32_t>(full.data(), N), stage, step);
          for (std::uint64_t pr = 0; pr < views.size(); ++pr) {
            for (std::uint64_t l = 0; l < views[pr].size(); ++l) {
              ASSERT_EQ(views[pr][l], full[lay.abs_of(pr, l)])
                  << k->name << " stage " << stage << " step " << step;
            }
          }
        }
      }
    }
  }
}

TEST(KernelIntegrated, FullSortsEveryVariant) {
  ActiveGuard guard;
  // The full simulated sorts (remap pack/unpack, fused merges, pairwise
  // exchanges) must sort correctly whichever kernel table is active.
  const std::size_t total = 1 << 10;
  const int P = 8;
  for (const Kernels* k : runnable_variants()) {
    set_active_for_testing(k);
    for (int alg = 0; alg < 4; ++alg) {
      auto keys = util::generate_keys(total, util::KeyDistribution::kUniform31, 77);
      auto expect = keys;
      std::sort(expect.begin(), expect.end());
      testing::run_blocked_spmd(
          keys, P, simd::MessageMode::kLong,
          [alg](simd::Proc& p, std::span<std::uint32_t> s) {
            switch (alg) {
              case 0: bitonic::smart_sort(p, s, {}); break;
              case 1: bitonic::cyclic_blocked_sort(p, s); break;
              case 2: bitonic::blocked_merge_sort(p, s); break;
              default: bitonic::naive_blocked_sort(p, s); break;
            }
          });
      EXPECT_EQ(keys, expect) << k->name << " alg=" << alg;
    }
  }
}

}  // namespace
}  // namespace bsort::kernel
